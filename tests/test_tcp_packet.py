"""Packet-level TCP vs the fluid model: the cross-check suite.

The two models share every hardware parameter; where their
approximations differ the tests document the expected gap:

* pipeline-limited transfers (big buffers): agreement within ~2 %;
* window-limited standard-MTU transfers: within ~15 %;
* window-limited *jumbo* transfers: the fluid model ignores segment
  quantisation of a 3.7-segment window, so the packet model lands
  20-35 % lower — asserted as a band, not an equality.
"""

import pytest

from repro.experiments import configs
from repro.net.tcp import TcpModel, TcpTuning
from repro.net.tcp_packet import PacketTcpTransfer, packet_transfer_time
from repro.sim import Engine
from repro.units import MB, kb, to_mbps

TUNED = TcpTuning(sockbuf_request=kb(512))
GA620 = configs.pc_netgear_ga620()


def rate_mbps(cfg, n, tuning=None, **kw):
    return to_mbps(n / packet_transfer_time(cfg, n, tuning, **kw))


# -- agreement with the fluid model ------------------------------------------------
def test_matches_fluid_at_plateau_ga620():
    fluid = TcpModel(GA620, TUNED)
    n = 4 * MB
    packet = packet_transfer_time(GA620, n, TUNED)
    assert packet == pytest.approx(fluid.transfer_time(n), rel=0.02)


def test_matches_fluid_small_messages():
    fluid = TcpModel(GA620, TUNED)
    for n in (1448, kb(4), kb(16)):
        packet = packet_transfer_time(GA620, n, TUNED)
        assert packet == pytest.approx(fluid.transfer_time(n), rel=0.1), n


def test_matches_fluid_window_limited_standard_mtu():
    cfg = configs.pc_trendnet(tuned=False)
    fluid = TcpModel(cfg)
    n = 4 * MB
    packet = packet_transfer_time(cfg, n)
    assert packet == pytest.approx(fluid.transfer_time(n), rel=0.15)


def test_jumbo_window_quantisation_documented_gap():
    """3.7 segments of window: the packet model sees the quantisation
    the fluid model smooths over.  Packet lands below fluid, but well
    above half."""
    cfg = configs.ds20_syskonnect_jumbo()
    tuning = TcpTuning(sockbuf_request=kb(32))
    n = 4 * MB
    packet = to_mbps(n / packet_transfer_time(cfg, n, tuning))
    fluid = to_mbps(n / TcpModel(cfg, tuning).transfer_time(n))
    assert 0.6 * fluid < packet < fluid


def test_plateau_900_on_ds20_jumbo_tuned():
    cfg = configs.ds20_syskonnect_jumbo()
    assert rate_mbps(cfg, 4 * MB, TUNED) == pytest.approx(900, rel=0.03)


# -- mechanics ----------------------------------------------------------------------
def test_segment_count():
    engine = Engine()
    t = PacketTcpTransfer(engine, GA620, TUNED)
    stats = t.run(1 * MB)
    assert stats.segments_sent == -(-1048576 // t.mss)


def test_acks_are_cumulative_and_fewer_than_segments():
    engine = Engine()
    t = PacketTcpTransfer(engine, GA620, TUNED)
    stats = t.run(1 * MB)
    assert 0 < stats.acks_sent <= stats.segments_sent


def test_sender_stalls_only_when_window_limited():
    engine = Engine()
    big = PacketTcpTransfer(engine, GA620, TUNED)
    s1 = big.run(kb(256))
    engine2 = Engine()
    small = PacketTcpTransfer(
        engine2, GA620, TcpTuning(sockbuf_request=kb(16), progress_stall=2e-3)
    )
    s2 = small.run(kb(256))
    assert s1.sender_stall_time < 1e-9
    assert s2.sender_stall_time > 0


def test_bigger_buffers_never_slower_packet_level():
    cfg = configs.pc_trendnet()
    slow = packet_transfer_time(cfg, 1 * MB, TcpTuning(sockbuf_request=kb(16)))
    fast = packet_transfer_time(cfg, 1 * MB, TcpTuning(sockbuf_request=kb(256)))
    assert fast <= slow


def test_throughput_stat():
    engine = Engine()
    t = PacketTcpTransfer(engine, GA620, TUNED)
    stats = t.run(1 * MB)
    assert stats.throughput == pytest.approx(1048576 / stats.completion_time)


def test_rejects_nonpositive_size():
    with pytest.raises(ValueError):
        packet_transfer_time(GA620, 0)


# -- slow start ------------------------------------------------------------------------
def test_cold_start_costs_extra():
    warm = packet_transfer_time(GA620, 1 * MB, TUNED)
    cold = packet_transfer_time(GA620, 1 * MB, TUNED, cold_start=True)
    assert cold > 1.05 * warm


def test_cold_start_penalty_fades_for_large_messages():
    def penalty(n):
        warm = packet_transfer_time(GA620, n, TUNED)
        cold = packet_transfer_time(GA620, n, TUNED, cold_start=True)
        return cold / warm

    assert penalty(8 * MB) < penalty(256 * 1024)


def test_cold_start_window_grows_to_sockbuf():
    engine = Engine()
    t = PacketTcpTransfer(engine, GA620, TUNED, cold_start=True)
    assert t.cwnd == 2 * t.mss
    t.run(4 * MB)
    assert t.cwnd == t.sockbuf


def test_deterministic():
    a = packet_transfer_time(GA620, 1 * MB, TUNED)
    b = packet_transfer_time(GA620, 1 * MB, TUNED)
    assert a == b
