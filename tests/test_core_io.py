"""Result persistence (JSON, np.out) and regression comparison."""

import json

import pytest

from repro.core import run_netpipe
from repro.core.io import (
    compare_to_baseline,
    load_result,
    result_from_dict,
    result_to_dict,
    save_netpipe_out,
    save_result,
)
from repro.core.results import NetPipePoint, NetPipeResult
from repro.experiments import configs
from repro.hw.cluster import DEFAULT_SYSCTL
from repro.mplib import RawTcp
from repro.units import us

CFG = configs.pc_netgear_ga620()


def test_roundtrip_preserves_everything(tmp_path):
    result = run_netpipe(RawTcp(), CFG)
    path = tmp_path / "curve.json"
    save_result(result, path)
    loaded = load_result(path)
    assert loaded.library == result.library
    assert loaded.config == result.config
    assert [(p.size, p.oneway_time) for p in loaded.points] == [
        (p.size, p.oneway_time) for p in result.points
    ]
    assert loaded.max_mbps == pytest.approx(result.max_mbps)


def test_dict_roundtrip():
    r = NetPipeResult("lib", "cfg", [NetPipePoint(1, us(100)), NetPipePoint(64, us(101))])
    assert result_from_dict(result_to_dict(r)).latency_us == pytest.approx(r.latency_us)


def test_load_rejects_wrong_format():
    with pytest.raises(ValueError, match="not a"):
        result_from_dict({"format": "something-else", "version": 1})


def test_load_rejects_wrong_version():
    data = result_to_dict(NetPipeResult("l", "c", [NetPipePoint(1, us(1))]))
    data["version"] = 99
    with pytest.raises(ValueError, match="version"):
        result_from_dict(data)


def test_json_is_valid_and_tagged(tmp_path):
    result = run_netpipe(RawTcp(), CFG, sizes=[1, 64, 1024])
    path = tmp_path / "curve.json"
    save_result(result, path)
    raw = json.loads(path.read_text())
    assert raw["format"] == "repro-netpipe-result"
    assert len(raw["points"]) == 3


def test_netpipe_out_format(tmp_path):
    result = run_netpipe(RawTcp(), CFG, sizes=[1, 1024])
    path = tmp_path / "np.out"
    save_netpipe_out(result, path)
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    size, seconds, mbps = lines[1].split()
    assert int(size) == 1024
    assert float(seconds) > 0 and float(mbps) > 0


def test_regression_ok_when_identical():
    a = run_netpipe(RawTcp(), CFG)
    b = run_netpipe(RawTcp(), CFG)
    report = compare_to_baseline(a, b)
    assert report.ok
    assert report.peak_change == pytest.approx(1.0)
    assert "OK" in report.render()


def test_regression_detects_detuned_system():
    """The admin's scenario: a reinstall reset the sysctls."""
    baseline = run_netpipe(RawTcp(), configs.pc_trendnet())
    regressed = run_netpipe(RawTcp(), configs.pc_trendnet(tuned=False))
    report = compare_to_baseline(baseline, regressed)
    assert not report.ok
    assert report.peak_change < 0.7
    assert any(size > 100000 for size, _, _ in report.regressions)
    assert "REGRESSION" in report.render()


def test_regression_requires_same_schedule():
    a = run_netpipe(RawTcp(), CFG, sizes=[1, 1024])
    b = run_netpipe(RawTcp(), CFG, sizes=[1, 2048])
    with pytest.raises(ValueError):
        compare_to_baseline(a, b)


def test_regression_tolerance_validation():
    a = run_netpipe(RawTcp(), CFG, sizes=[1, 1024])
    with pytest.raises(ValueError):
        compare_to_baseline(a, a, tolerance=0.0)


def test_small_sizes_excluded_from_point_checks():
    a = run_netpipe(RawTcp(), CFG, sizes=[1, 2, 4, 1024])
    # Perturb only the tiny points: no regression flagged.
    perturbed = NetPipeResult(
        a.library,
        a.config,
        [
            NetPipePoint(p.size, p.oneway_time * (2.0 if p.size < 64 else 1.0))
            for p in a.points
        ],
    )
    assert compare_to_baseline(a, perturbed).ok
