"""Exporter formats: JSONL and the Chrome-trace schema.

The Chrome-trace contract under test is what ui.perfetto.dev /
chrome://tracing actually require: valid JSON with a ``traceEvents``
array, metadata events first, timed events monotonically ordered by
``ts``, and a distinct (pid, tid) per (run, rank) pair.
"""

import json

import pytest

from repro.experiments import configs
from repro.mplib import get_library
from repro.obs import (
    Recorder,
    chrome_trace_events,
    to_chrome_trace,
    to_chrome_trace_json,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim import Engine

pytestmark = pytest.mark.obs

GA620 = configs.pc_netgear_ga620()


@pytest.fixture(scope="module")
def traced():
    """One rendezvous transfer traced end to end."""
    rec = Recorder(meta={"label": "MPICH", "size": 262144})
    engine = Engine(obs=rec)
    a, b = get_library("mpich").build(engine, GA620)
    engine.process(a.send(262144))
    engine.process(b.recv(262144))
    engine.run()
    return rec


# -- JSONL --------------------------------------------------------------------
def test_jsonl_every_line_parses_and_leads_with_meta(traced):
    lines = to_jsonl(traced).splitlines()
    docs = [json.loads(line) for line in lines]
    assert docs[0]["kind"] == "meta" and docs[0]["label"] == "MPICH"
    kinds = {d["kind"] for d in docs}
    assert kinds == {"meta", "span", "counter", "histogram"}
    spans = [d for d in docs if d["kind"] == "span"]
    assert len(spans) == len(traced.spans)
    assert all(d["t1"] >= d["t0"] for d in spans)


def test_write_jsonl_roundtrip(tmp_path, traced):
    path = tmp_path / "trace.jsonl"
    write_jsonl(str(path), traced)
    assert path.read_text() == to_jsonl(traced)


# -- Chrome trace schema ------------------------------------------------------
def test_chrome_trace_is_valid_json_with_trace_events(traced):
    doc = json.loads(to_chrome_trace_json(traced))
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert doc["otherData"]["clock"] == "simulated"


def test_chrome_trace_ts_monotonic_after_metadata(traced):
    events = to_chrome_trace(traced)["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    timed = [e for e in events if e["ph"] != "M"]
    # metadata strictly precedes timed events
    assert events[: len(meta)] == meta
    ts = [e["ts"] for e in timed]
    assert ts == sorted(ts)
    assert all(t >= 0 for t in ts)


def test_chrome_trace_pid_and_tid_per_rank(traced):
    events = to_chrome_trace(traced)["traceEvents"]
    spans = [e for e in events if e["ph"] == "X"]
    # both ranks of the transfer appear as distinct threads
    assert {e["tid"] for e in spans} == {0, 1}
    assert {e["pid"] for e in spans} == {1}
    thread_names = {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert set(thread_names) >= {(1, 0), (1, 1)}


def test_chrome_trace_multi_run_gets_distinct_pids(traced):
    other = Recorder(meta={"label": "other"})
    other.record("net.send", cat="wire", t0=0.0, t1=1e-6, track=0)
    doc = to_chrome_trace({"MPICH": traced, "other": other})
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert pids == {1, 2}
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert names == {"MPICH", "other"}


def test_chrome_trace_span_fields_complete(traced):
    for e in chrome_trace_events(traced):
        if e["ph"] == "X":
            assert e["dur"] >= 0
            assert {"name", "cat", "ts", "pid", "tid"} <= set(e)


def test_chrome_trace_counters_emitted_as_C_events(traced):
    events = [e for e in chrome_trace_events(traced) if e["ph"] == "C"]
    names = {e["name"] for e in events}
    assert "sim.events" in names and "net.messages" in names
    for e in events:
        assert list(e["args"]) == [e["name"]]


def test_chrome_trace_points_are_instants():
    rec = Recorder()
    rec.point("exec.fault", cat="exec-event", t=2e-6, detail="boom")
    (event,) = [
        e for e in chrome_trace_events(rec) if e["ph"] not in ("M", "C")
    ]
    assert event["ph"] == "i" and event["ts"] == pytest.approx(2.0)


def test_write_chrome_trace_loads_back(tmp_path, traced):
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), {"MPICH": traced})
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
