"""The analyzer's verdict on our own source tree: zero findings.

This is the tier-1 teeth of repro.check — the determinism and
cache-safety invariants DESIGN.md claims are enforced here, on every
test run, with no baseline file to hide behind.
"""

from pathlib import Path

import pytest

from repro.check import DEFAULT_POLICY, SIM_PACKAGES, analyze_paths

pytestmark = pytest.mark.check

SRC = Path(__file__).resolve().parent.parent / "src"


def test_source_tree_is_clean():
    findings = analyze_paths([SRC])
    assert findings == [], "repro.check found violations:\n" + "\n".join(
        f.render() for f in findings
    )


def test_policy_covers_the_simulation_core():
    # The packages whose determinism the reproduction's claims rest on
    # must all be inside the determinism and purity scopes.
    for family in ("determinism", "purity", "cache-safety"):
        for pkg in SIM_PACKAGES:
            assert DEFAULT_POLICY.family_applies(family, pkg + ".engine"), (
                family,
                pkg,
            )
    # ... and the sanctioned escape hatches must stay open.
    assert not DEFAULT_POLICY.family_applies(
        "determinism", "repro.realnet.transport"
    )
    assert not DEFAULT_POLICY.family_applies(
        "determinism", "repro.exec.scheduler"
    )
    assert not DEFAULT_POLICY.rule_applies("pure-open", "repro.core.io")


def test_every_analyzed_source_module_resolves_a_name():
    # Path-derived module names are what scoping keys on; every file
    # under src/ must resolve so no module silently escapes policy.
    from repro.check import module_name_for_path
    from repro.check.analyzer import iter_python_files

    for path in iter_python_files([SRC]):
        module = module_name_for_path(path)
        assert module and module.startswith("repro"), path


def test_protocol_flow_scopes_to_mplib_only():
    # Endpoint state machines live in repro.mplib; pairing analysis on
    # anything else would only produce noise.
    assert DEFAULT_POLICY.family_applies("protocol-flow", "repro.mplib.tcp_base")
    for module in ("repro.net.tcp", "repro.sim.engine", "repro.analysis.fit"):
        assert not DEFAULT_POLICY.family_applies("protocol-flow", module)


def test_dimension_scope_is_the_modelled_physics():
    # Dimension discipline matters where paper constants become model
    # arithmetic: the network, library, and hardware layers.
    for module in ("repro.net.tcp", "repro.mplib.mpich", "repro.hw.nic"):
        assert DEFAULT_POLICY.family_applies("dimension", module)
    # Analysis/reporting juggle display units (µs axes, Mbps labels)
    # on purpose and must stay out of scope.
    for module in ("repro.analysis.fit", "repro.reporting.figures"):
        assert not DEFAULT_POLICY.family_applies("dimension", module)
