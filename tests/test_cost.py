"""Price/performance analysis from the paper's quoted prices."""

import pytest

from repro.analysis import ClusterBill, PricePerformance, cluster_bill
from repro.hw.catalog import (
    GIGANET_CLAN,
    MYRINET_PCI64A,
    NETGEAR_GA620,
    TRENDNET_TEG_PCITX,
)


def test_two_node_back_to_back_has_no_switch():
    bill = cluster_bill(TRENDNET_TEG_PCITX, 2)
    assert not bill.switched
    assert bill.switch_cost == 0.0
    assert bill.nic_cost == 110.0  # 2 x $55, the paper's price


def test_more_than_two_nodes_need_a_switch():
    bill = cluster_bill(NETGEAR_GA620, 8)
    assert bill.switched
    assert bill.switch_cost > 0
    with pytest.raises(ValueError):
        cluster_bill(NETGEAR_GA620, 8, switched=False)


def test_proprietary_interconnects_cost_more_per_port():
    gige = cluster_bill(NETGEAR_GA620, 16)
    myri = cluster_bill(MYRINET_PCI64A, 16)
    clan = cluster_bill(GIGANET_CLAN, 16)
    assert myri.interconnect_total > 3 * gige.interconnect_total
    assert clan.interconnect_total > 3 * gige.interconnect_total


def test_interconnect_fraction():
    cheap = cluster_bill(TRENDNET_TEG_PCITX, 16)
    pricey = cluster_bill(MYRINET_PCI64A, 16)
    assert cheap.interconnect_fraction < 0.15
    assert pricey.interconnect_fraction > 0.4


def test_totals_add_up():
    bill = cluster_bill(MYRINET_PCI64A, 4)
    assert bill.total == pytest.approx(
        bill.host_cost + bill.nic_cost + bill.switch_cost
    )


def test_cluster_needs_two_nodes():
    with pytest.raises(ValueError):
        cluster_bill(NETGEAR_GA620, 1)


def test_price_performance_metrics():
    bill = cluster_bill(NETGEAR_GA620, 16)
    pp = PricePerformance(
        label="x", bill=bill, metric=2800.0, metric_name="tasks/s"
    )
    assert pp.per_kilodollar == pytest.approx(2800 / (bill.interconnect_total / 1000))
    assert pp.per_kilodollar_total < pp.per_kilodollar


def test_commodity_wins_per_network_dollar():
    """The design-study conclusion as an invariant: tuned GigE beats
    Myrinet on farm throughput per interconnect dollar."""
    from repro.apps import run_task_farm
    from repro.hw.catalog import PENTIUM4_PC
    from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
    from repro.mplib import MpichGm, MpLite
    from repro.units import us

    nodes = 8
    gige_cfg = ClusterConfig(
        PENTIUM4_PC, TRENDNET_TEG_PCITX, sysctl=TUNED_SYSCTL, back_to_back=False
    )
    myri_cfg = ClusterConfig(PENTIUM4_PC, MYRINET_PCI64A, back_to_back=False)
    gige = run_task_farm(MpLite(), gige_cfg, nranks=nodes, tasks=32,
                         work_per_task=us(1000))
    myri = run_task_farm(MpichGm(), myri_cfg, nranks=nodes, tasks=32,
                         work_per_task=us(1000))
    gige_ppd = gige.tasks_per_second / cluster_bill(
        TRENDNET_TEG_PCITX, nodes
    ).interconnect_total
    myri_ppd = myri.tasks_per_second / cluster_bill(
        MYRINET_PCI64A, nodes
    ).interconnect_total
    # Myrinet is absolutely faster...
    assert myri.tasks_per_second > gige.tasks_per_second
    # ...but commodity wins per dollar by a wide margin.
    assert gige_ppd > 3 * myri_ppd
