"""Bisection workload and the FIG_UNTUNED experiment."""

import pytest

from repro.apps import run_bisection
from repro.experiments import configs
from repro.experiments.untuned import FIG_UNTUNED
from repro.mplib import MpLite

GA620 = configs.pc_netgear_ga620()


def test_bisection_scales_linearly_on_crossbar():
    two = run_bisection(MpLite(), GA620, nranks=2)
    eight = run_bisection(MpLite(), GA620, nranks=8)
    assert eight.aggregate_bandwidth == pytest.approx(
        4 * two.aggregate_bandwidth, rel=0.05
    )


def test_bisection_pair_efficiency_full_on_disjoint_pairs():
    r = run_bisection(MpLite(), GA620, nranks=8)
    assert r.pair_efficiency > 0.95


def test_bisection_validation():
    with pytest.raises(ValueError):
        run_bisection(MpLite(), GA620, nranks=5)
    with pytest.raises(ValueError):
        run_bisection(MpLite(), GA620, nranks=4, repeats=0)


def test_untuned_experiment_shows_drastic_differences():
    results = FIG_UNTUNED.run()
    plateau = {k: v.plateau_mbps for k, v in results.items()}
    assert plateau["MPICH"] < 100
    assert plateau["PVM"] < 120
    assert plateau["raw TCP"] > 500  # the GA620 trap: raw TCP looks fine
    assert plateau["TCGMSG"] > 500  # 32 KB is enough on the AceNIC


def test_untuned_labels_match_fig1():
    from repro.experiments import FIG1

    assert FIG_UNTUNED.labels() == FIG1.labels()
