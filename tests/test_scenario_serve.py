"""Serve tier x scenario tier: the ``scenario`` op end to end.

The serving core answers scenario questions with the same tiering
discipline as curve queries — hot LRU, in-flight coalescing, the
persistent store, shared admission control — and the answer must be
the same document :func:`repro.scenario.run_scenario` produces
directly.
"""

import asyncio
import json

import pytest

from repro.exec import ExecPolicy
from repro.scenario import ScenarioSpec, ScenarioStore, WorkloadSpec, run_scenario
from repro.serve import ServeCore
from repro.serve.frontend import handle_line

pytestmark = [pytest.mark.scenario, pytest.mark.serve]

SIZES = (64, 1024)


def _spec_data(**overrides) -> dict:
    spec = dict(
        name="served", library="mpich", config="pc_netgear_ga620",
        workload={"sizes": list(SIZES)},
    )
    spec.update(overrides)
    return spec


def _core(tmp_path, **kw):
    kw.setdefault("policy", ExecPolicy(max_workers=1, backoff=0.001))
    kw.setdefault("scenario_cache", ScenarioStore(tmp_path / "scenarios"))
    return ServeCore(**kw)


def _run(coro):
    return asyncio.run(coro)


def test_scenario_op_matches_a_direct_run(tmp_path):
    async def body():
        core = _core(tmp_path)
        try:
            request = json.dumps({"op": "scenario", "spec": _spec_data()})
            return await handle_line(core, request)
        finally:
            await core.aclose()

    response = _run(body())
    assert response["ok"] is True
    assert response["source"] == "computed"

    direct, report = run_scenario(ScenarioSpec.from_jsonable(_spec_data()))
    assert response["fingerprint"] == report.fingerprint
    assert response["scenario"] == direct.to_jsonable()


def test_second_call_is_hot_and_restart_hits_the_store(tmp_path):
    async def body(source_log):
        core = _core(tmp_path)
        try:
            for _ in range(2):
                document = await core.scenario(_spec_data())
                source_log.append(document["source"])
        finally:
            await core.aclose()

    sources = []
    _run(body(sources))
    assert sources == ["computed", "hot"]

    # A fresh core over the same store answers from disk, not simulation.
    sources = []
    _run(body(sources))
    assert sources[0] == "store"


def test_concurrent_identical_specs_coalesce(tmp_path):
    async def body():
        core = _core(tmp_path)
        try:
            docs = await asyncio.gather(
                core.scenario(_spec_data()),
                core.scenario(_spec_data()),
                core.scenario(_spec_data()),
            )
        finally:
            await core.aclose()
        return docs

    docs = _run(body())
    assert docs[0]["scenario"] == docs[1]["scenario"] == docs[2]["scenario"]
    sources = sorted(d["source"] for d in docs)
    assert sources.count("computed") == 1
    assert sources.count("coalesced") == 2


def test_bad_spec_is_a_typed_bad_request_with_field_path(tmp_path):
    async def body():
        core = _core(tmp_path)
        try:
            request = json.dumps({
                "op": "scenario",
                "spec": _spec_data(traffic=[{"rate": 2.0}]),
            })
            return await handle_line(core, request)
        finally:
            await core.aclose()

    response = _run(body())
    assert response["ok"] is False
    assert response["error"]["kind"] == "bad-request"
    assert "traffic[0].rate" in response["error"]["detail"]


def test_unknown_op_message_names_scenario(tmp_path):
    async def body():
        core = _core(tmp_path)
        try:
            return await handle_line(core, json.dumps({"op": "nope"}))
        finally:
            await core.aclose()

    response = _run(body())
    assert response["ok"] is False
    assert "scenario" in response["error"]["detail"]


def test_stats_expose_the_scenario_tier(tmp_path):
    async def body():
        core = _core(tmp_path)
        try:
            await core.scenario(_spec_data())
            await core.scenario(_spec_data())
            return core.stats()
        finally:
            await core.aclose()

    stats = _run(body())
    block = stats["scenario"]
    assert block["requests"] == 2
    assert block["computed"] == 1
    assert block["hot"] == 1
    assert block["store_root"].endswith("scenarios")
