"""Application workloads: the paper's Sec. 7 predictions, quantified."""

import pytest

from repro.apps import (
    run_halo_exchange,
    run_overlap_probe,
    run_task_farm,
    run_transpose,
)
from repro.apps.halo import _grid_shape
from repro.experiments import configs
from repro.mplib import LamMpi, Mpich, MpiPro, MpLite, Pvm, RawGm, Tcgmsg
from repro.units import MB, kb, us

CFG = configs.pc_netgear_ga620()


# -- overlap probe ------------------------------------------------------------------
def test_sigio_and_progress_thread_overlap_fully():
    """Sec. 7: MPI/Pro's progress thread and MP_Lite's SIGIO engine
    'will keep data flowing more readily'."""
    for lib in (MpLite(), MpiPro.tuned()):
        r = run_overlap_probe(lib, CFG)
        assert r.overlap_efficiency > 0.9, lib.display_name


def test_blocking_progress_libraries_cannot_overlap():
    for lib in (Mpich.tuned(), Tcgmsg(), Pvm.tuned(), LamMpi.tuned()):
        r = run_overlap_probe(lib, CFG)
        assert r.overlap_efficiency < 0.2, lib.display_name


def test_nic_driven_gm_overlaps():
    r = run_overlap_probe(RawGm(), configs.pc_myrinet())
    assert r.overlap_efficiency > 0.9


def test_overlap_result_arithmetic():
    r = run_overlap_probe(MpLite(), CFG, compute_ratio=1.0)
    assert r.combined_time <= r.compute_time + r.transfer_time + 1e-9
    assert r.combined_time >= max(r.compute_time, r.transfer_time) * 0.99


def test_overlap_probe_validation():
    with pytest.raises(ValueError):
        run_overlap_probe(MpLite(), CFG, iterations=0)


# -- halo exchange ---------------------------------------------------------------------
def test_grid_shape_most_square():
    assert _grid_shape(4) == (2, 2)
    assert _grid_shape(8) == (2, 4)
    assert _grid_shape(9) == (3, 3)
    assert _grid_shape(7) == (1, 7)


def test_halo_progress_engines_beat_blocking():
    lite = run_halo_exchange(MpLite(), CFG, nranks=4)
    mpich = run_halo_exchange(Mpich.tuned(), CFG, nranks=4)
    assert lite.parallel_efficiency > mpich.parallel_efficiency + 0.05


def test_halo_efficiency_bounds():
    r = run_halo_exchange(MpLite(), CFG, nranks=4)
    assert 0.0 <= r.parallel_efficiency <= 1.0
    assert r.communication_fraction == pytest.approx(
        1.0 - r.parallel_efficiency
    )


def test_halo_bigger_domains_amortise_communication():
    small = run_halo_exchange(MpLite(), CFG, nranks=4, local_nx=64, local_ny=64)
    big = run_halo_exchange(MpLite(), CFG, nranks=4, local_nx=512, local_ny=512)
    assert big.parallel_efficiency > small.parallel_efficiency


def test_halo_validation():
    with pytest.raises(ValueError):
        run_halo_exchange(MpLite(), CFG, nranks=1)
    with pytest.raises(ValueError):
        run_halo_exchange(MpLite(), CFG, iterations=0)


# -- transpose -----------------------------------------------------------------------------
def test_transpose_copies_tax_bandwidth():
    lite = run_transpose(MpLite(), CFG, nranks=4)
    mpich = run_transpose(Mpich.tuned(), CFG, nranks=4)
    assert lite.effective_bandwidth > 1.1 * mpich.effective_bandwidth


def test_transpose_validation():
    with pytest.raises(ValueError):
        run_transpose(MpLite(), CFG, nranks=1)
    with pytest.raises(ValueError):
        run_transpose(MpLite(), CFG, nranks=3, matrix_n=100)


def test_transpose_result_fields():
    r = run_transpose(MpLite(), CFG, nranks=4, matrix_n=512)
    assert r.bytes_exchanged_per_rank == 3 * (128 * 128 * 8)
    assert r.effective_bandwidth > 0


# -- task farm -------------------------------------------------------------------------------
def test_task_farm_daemon_routing_hurts():
    """PVM's pvmd route doubles per-message latency and throttles the
    master: farm throughput collapses relative to direct routing."""
    direct = run_task_farm(Pvm.tuned(), CFG)
    daemon = run_task_farm(Pvm(), CFG)
    assert daemon.tasks_per_second < 0.7 * direct.tasks_per_second


def test_task_farm_low_latency_interconnect_wins():
    gige = run_task_farm(MpLite(), CFG, work_per_task=us(200))
    myri = run_task_farm(RawGm(), configs.pc_myrinet(), work_per_task=us(200))
    assert myri.tasks_per_second > gige.tasks_per_second


def test_task_farm_efficiency_bounded():
    r = run_task_farm(MpLite(), CFG)
    assert 0.0 < r.farm_efficiency <= 1.0


def test_task_farm_validation():
    with pytest.raises(ValueError):
        run_task_farm(MpLite(), CFG, nranks=1)
    with pytest.raises(ValueError):
        run_task_farm(MpLite(), CFG, nranks=5, tasks=2)


def test_task_farm_more_workers_more_throughput():
    few = run_task_farm(MpLite(), CFG, nranks=3, tasks=40)
    many = run_task_farm(MpLite(), CFG, nranks=9, tasks=40)
    assert many.tasks_per_second > few.tasks_per_second
