"""GM and VIA library protocol models against the paper's Sec. 5-6."""

import pytest

from repro.core import netpipe_sizes, run_netpipe
from repro.hw.catalog import (
    GIGANET_CLAN,
    MYRINET_PCI64A,
    PENTIUM4_PC,
    SYSKONNECT_SK9843,
)
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.mplib import (
    IpOverGm,
    MpichGm,
    MpiProGm,
    MpiProVia,
    MpLiteVia,
    Mvich,
    MvichParams,
    RawGm,
)
from repro.net.gm import GmReceiveMode
from repro.units import MB, kb

MYRI = ClusterConfig(PENTIUM4_PC, MYRINET_PCI64A)
CLAN = ClusterConfig(PENTIUM4_PC, GIGANET_CLAN, back_to_back=False)
SK_PC = ClusterConfig(PENTIUM4_PC, SYSKONNECT_SK9843, sysctl=TUNED_SYSCTL)

SIZES = netpipe_sizes(stop=8 * MB)


def sweep(lib, cfg):
    return run_netpipe(lib, cfg, sizes=SIZES)


# -- GM -------------------------------------------------------------------------
def test_raw_gm_800_mbps_16us():
    r = sweep(RawGm(), MYRI)
    assert r.max_mbps == pytest.approx(800, rel=0.05)
    assert r.latency_us == pytest.approx(16, abs=1.5)


def test_gm_blocking_mode_36us_same_bandwidth():
    polling = sweep(RawGm(GmReceiveMode.POLLING), MYRI)
    blocking = sweep(RawGm(GmReceiveMode.BLOCKING), MYRI)
    assert blocking.latency_us == pytest.approx(36, abs=2)
    assert blocking.max_mbps == pytest.approx(polling.max_mbps, rel=0.02)


def test_mpich_gm_loses_only_a_few_percent():
    """Sec. 5: 'MPICH-GM and MPI/Pro-GM results are nearly identical,
    losing only a few percent off the raw GM performance in the
    intermediate range.'"""
    raw = sweep(RawGm(), MYRI)
    mpich = sweep(MpichGm(), MYRI)
    # asymptotically equal (zero-copy rendezvous)...
    assert mpich.max_mbps / raw.max_mbps >= 0.97
    # ... a few percent down in the intermediate range:
    mid = kb(8)
    frac = mpich.mbps_at(mid) / raw.mbps_at(mid)
    assert 0.80 <= frac < 1.0


def test_mpich_gm_and_mpipro_gm_nearly_identical():
    a = sweep(MpichGm(), MYRI)
    b = sweep(MpiProGm(), MYRI)
    assert b.max_mbps == pytest.approx(a.max_mbps, rel=0.03)
    assert abs(b.latency_us - a.latency_us) < 3.0


def test_ip_gm_latency_48us_and_gige_class_throughput():
    r = sweep(IpOverGm(), MYRI)
    assert r.latency_us == pytest.approx(48, abs=2)
    assert 450 <= r.max_mbps <= 650  # "similar ... to TCP over GigE"
    assert r.max_mbps < 0.8 * sweep(RawGm(), MYRI).max_mbps


# -- VIA on Giganet -----------------------------------------------------------------
def test_all_three_via_libraries_reach_800_on_giganet():
    for lib in (Mvich.tuned(), MpLiteVia(), MpiProVia.tuned()):
        r = sweep(lib, CLAN)
        assert r.max_mbps == pytest.approx(800, rel=0.06), lib.display_name


def test_giganet_latencies_mvich_mplite_10us_mpipro_42us():
    """Sec. 6.2: 'MVICH and MP_Lite have latencies of 10 us, while
    MPI/Pro has a greater overhead at 42 us.'"""
    assert sweep(Mvich.tuned(), CLAN).latency_us == pytest.approx(10.5, abs=1.5)
    assert sweep(MpLiteVia(), CLAN).latency_us == pytest.approx(10, abs=1.5)
    assert sweep(MpiProVia.tuned(), CLAN).latency_us == pytest.approx(42, abs=2)


def test_mvich_rput_support_is_vital():
    """Sec. 6.1: 'It is vital to configure MVICH using
    DVIADEV_RPUT_SUPPORT to get good performance.'"""
    with_rput = sweep(Mvich.tuned(), CLAN)
    without = sweep(Mvich(MvichParams(rput_support=False, via_long=kb(64))), CLAN)
    assert without.max_mbps < 0.7 * with_rput.max_mbps


def test_mvich_via_long_64kb_removes_the_dip():
    """Sec. 6.1: 'Setting via_long to 64 kB gets rid of a dip due to
    the rendezvous threshold.'"""
    stock = sweep(Mvich(), CLAN)  # default 16 KB threshold
    tuned = sweep(Mvich.tuned(), CLAN)  # 64 KB
    assert tuned.mbps_at(kb(16)) > stock.mbps_at(kb(16))


def test_mvich_refuses_via_long_above_64kb():
    """'increasing it higher caused the system to freeze up'."""
    with pytest.raises(ValueError, match="froze"):
        MvichParams(via_long=kb(128))


def test_low_spin_count_adds_latency():
    lazy = sweep(Mvich(MvichParams(spin_count=100)), CLAN)
    spinny = sweep(Mvich(MvichParams(spin_count=10000)), CLAN)
    assert lazy.latency_us > spinny.latency_us + 5


# -- M-VIA over SysKonnect --------------------------------------------------------------
def test_mvia_reaches_425_at_42us():
    r = sweep(Mvich(), SK_PC)
    assert r.max_mbps == pytest.approx(425, rel=0.08)
    assert r.latency_us == pytest.approx(43, abs=2)


def test_mvia_dip_at_16kb_rdma_threshold():
    """Sec. 6.2: 'The small dip at 16 kB is at the RDMA threshold.'"""
    r = sweep(MpLiteVia(), SK_PC)
    at = r.mbps_at(kb(16))
    below = r.mbps_at(kb(16) - 3)
    assert at < below


def test_mvia_no_better_than_raw_tcp():
    """The paper's sobering M-VIA conclusion."""
    from repro.mplib import RawTcp

    via = sweep(MpLiteVia(), SK_PC)
    tcp = sweep(RawTcp(), SK_PC)
    assert via.max_mbps == pytest.approx(tcp.max_mbps, rel=0.12)
