"""NetPIPE core: size schedule, ping-pong driver, results, reports."""

import pytest

from repro.core import (
    NetPipePoint,
    NetPipeResult,
    format_comparison,
    format_result,
    measure_pingpong,
    netpipe_sizes,
    run_netpipe,
)
from repro.core.report import ascii_profile
from repro.core.runner import run_many
from repro.core.sizes import latency_sizes
from repro.hw.catalog import NETGEAR_GA620, PENTIUM4_PC
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.mplib import MpLite, RawTcp
from repro.sim import Engine
from repro.units import MB, us

CFG = ClusterConfig(PENTIUM4_PC, NETGEAR_GA620, sysctl=TUNED_SYSCTL)


# -- sizes -----------------------------------------------------------------------
def test_sizes_start_stop_included():
    s = netpipe_sizes(start=1, stop=1000)
    assert s[0] == 1 and s[-1] == 1000


def test_sizes_sorted_unique():
    s = netpipe_sizes()
    assert s == sorted(set(s))


def test_sizes_include_perturbations():
    s = netpipe_sizes(stop=10000, perturbation=3)
    assert 1024 in s and 1021 in s and 1027 in s


def test_sizes_zero_perturbation():
    s = netpipe_sizes(stop=128, perturbation=0)
    assert s == [1, 2, 4, 8, 16, 32, 64, 128]


def test_sizes_validation():
    with pytest.raises(ValueError):
        netpipe_sizes(start=0)
    with pytest.raises(ValueError):
        netpipe_sizes(start=10, stop=5)
    with pytest.raises(ValueError):
        netpipe_sizes(perturbation=-1)


def test_latency_sizes_below_64():
    assert all(s < 64 for s in latency_sizes())
    assert latency_sizes()


# -- ping-pong driver ----------------------------------------------------------------
def test_pingpong_matches_analytic_transfer_time():
    lib = RawTcp()
    engine = Engine()
    a, b = lib.build(engine, CFG)
    link = lib.link_model(CFG)
    size = 1 * MB
    oneway = measure_pingpong(engine, a, b, size)
    # Raw TCP adds nothing: one-way time == the link's transfer time.
    assert oneway == pytest.approx(link.transfer_time(size), rel=1e-9)


def test_pingpong_repeats_average_consistently():
    lib = RawTcp()
    engine = Engine()
    a, b = lib.build(engine, CFG)
    one = measure_pingpong(engine, a, b, 4096, repeats=1)
    many = measure_pingpong(engine, a, b, 4096, repeats=5)
    assert many == pytest.approx(one, rel=1e-9)


def test_pingpong_rejects_zero_repeats():
    lib = RawTcp()
    engine = Engine()
    a, b = lib.build(engine, CFG)
    with pytest.raises(ValueError):
        measure_pingpong(engine, a, b, 10, repeats=0)


def test_run_netpipe_deterministic():
    r1 = run_netpipe(RawTcp(), CFG)
    r2 = run_netpipe(RawTcp(), CFG)
    assert [(p.size, p.oneway_time) for p in r1] == [
        (p.size, p.oneway_time) for p in r2
    ]


def test_run_many_preserves_order_and_labels():
    res = run_many([RawTcp(), MpLite()], CFG)
    assert list(res) == ["raw TCP", "MP_Lite"]


def test_run_many_rejects_duplicate_labels():
    with pytest.raises(ValueError):
        run_many([RawTcp(), RawTcp()], CFG)


# -- results ------------------------------------------------------------------------
def make_result():
    points = [
        NetPipePoint(size=1, oneway_time=us(100)),
        NetPipePoint(size=64, oneway_time=us(101)),
        NetPipePoint(size=1024, oneway_time=us(110)),
        NetPipePoint(size=65536, oneway_time=us(1000)),
        NetPipePoint(size=1048576, oneway_time=us(15000)),
    ]
    return NetPipeResult(library="x", config="y", points=points)


def test_point_mbps():
    p = NetPipePoint(size=125000, oneway_time=1e-3)
    assert p.mbps == pytest.approx(1000.0)


def test_latency_is_mean_below_64():
    r = make_result()
    assert r.latency_us == pytest.approx(100.0)  # only the 1-byte point


def test_latency_requires_small_points():
    r = NetPipeResult("x", "y", [NetPipePoint(1024, us(10))])
    with pytest.raises(ValueError):
        _ = r.latency_us


def test_point_at_picks_nearest():
    r = make_result()
    assert r.point_at(60000).size == 65536
    assert r.point_at(2).size == 1


def test_max_and_plateau():
    r = make_result()
    assert r.max_mbps == pytest.approx(r.points[-1].mbps)
    assert r.plateau_mbps == r.points[-1].mbps


def test_half_bandwidth_size():
    r = run_netpipe(RawTcp(), CFG)
    half = r.half_bandwidth_size()
    assert r.mbps_at(half) >= r.max_mbps / 2
    # half-bandwidth point of a 120 us / 550 Mb/s link is ~8-16 KB
    assert 2048 <= half <= 65536


def test_dips_detects_rendezvous_dip():
    from repro.mplib import Mpich

    r = run_netpipe(Mpich.tuned(), CFG)
    sizes_with_dips = [s for s, _ in r.dips(min_depth=0.03)]
    assert any(120000 < s < 140000 for s in sizes_with_dips)


def test_dips_empty_for_smooth_curve():
    r = run_netpipe(RawTcp(), CFG)
    assert r.dips(min_depth=0.05) == []


def test_fraction_of():
    raw = run_netpipe(RawTcp(), CFG)
    lite = run_netpipe(MpLite(), CFG)
    assert lite.fraction_of(raw) == pytest.approx(1.0, abs=0.03)
    assert lite.fraction_of(raw, size=1024) <= 1.0


def test_result_is_sorted_by_size():
    pts = [NetPipePoint(1000, us(10)), NetPipePoint(1, us(1))]
    r = NetPipeResult("x", "y", pts)
    assert [p.size for p in r.points] == [1, 1000]


def test_result_len_and_iter():
    r = make_result()
    assert len(r) == 5
    assert [p.size for p in r][0] == 1


# -- report -------------------------------------------------------------------------
def test_format_result_contains_summary():
    r = run_netpipe(RawTcp(), CFG)
    text = format_result(r, every=10)
    assert "raw TCP" in text and "Mbps" in text


def test_format_comparison_columns():
    res = run_many([RawTcp(), MpLite()], CFG)
    text = format_comparison(res)
    assert "raw TCP" in text and "MP_Lite" in text
    assert "max Mb/s" in text and "lat us" in text


def test_format_comparison_empty():
    assert "no results" in format_comparison({})


def test_ascii_profile_renders():
    r = run_netpipe(RawTcp(), CFG)
    text = ascii_profile(r)
    assert "#" in text and "profile" in text


# -- signature graph -------------------------------------------------------------
def test_signature_sorted_by_time():
    r = run_netpipe(RawTcp(), CFG)
    sig = r.signature()
    times = [t for t, _ in sig]
    assert times == sorted(times)
    assert len(sig) == len(r)


def test_signature_merit_rewards_better_networks():
    """GM (lower latency AND higher bandwidth) must dominate GigE TCP
    in the single-figure merit."""
    from repro.experiments import configs as _configs
    from repro.mplib import RawGm

    tcp = run_netpipe(RawTcp(), CFG)
    gm = run_netpipe(RawGm(), _configs.pc_myrinet())
    assert gm.signature_merit() > tcp.signature_merit()


def test_signature_merit_needs_points():
    r = NetPipeResult("x", "y", [NetPipePoint(1, us(10))])
    with pytest.raises(ValueError):
        r.signature_merit()
