"""Experiment layer: figures, anchors, audit, configs."""

import pytest

from repro.core import netpipe_sizes
from repro.data.paper import ANCHORS, Anchor, anchors_for
from repro.experiments import ALL_FIGURES, FIG1, FIG4, configs
from repro.experiments.harness import Experiment, ExperimentEntry
from repro.mplib import RawTcp
from repro.units import MB


def test_all_figures_present():
    assert [f.id for f in ALL_FIGURES] == ["fig1", "fig2", "fig3", "fig4", "fig5"]


def test_fig1_has_paper_legend():
    assert FIG1.labels() == [
        "raw TCP", "MPICH", "LAM/MPI", "MPI/Pro", "MP_Lite", "PVM", "TCGMSG",
    ]


def test_fig4_includes_tcp_ge_reference():
    assert "TCP - GE" in FIG4.labels()


def test_every_figure_audit_passes():
    """The headline: all paper anchors within tolerance."""
    for fig in ALL_FIGURES:
        rows = fig.audit()
        misses = [r for r in rows if not r.ok]
        assert not misses, f"{fig.id}: " + "; ".join(
            r.render() for r in misses
        )


def test_every_anchor_has_an_owner():
    """Each figure anchor must reference a label its experiment makes."""
    for fig in ALL_FIGURES:
        labels = set(fig.labels())
        for anchor in fig.anchors():
            assert anchor.library in labels, anchor.id


def test_anchor_ids_unique():
    ids = [a.id for a in ANCHORS]
    assert len(ids) == len(set(ids))


def test_anchor_metric_parsing():
    from repro.core import run_netpipe

    r = run_netpipe(RawTcp(), configs.pc_netgear_ga620())
    a = Anchor("x", "figX", "raw TCP", "mbps_at:1024", 60, 0.5, "q")
    measured, ok = a.check(r)
    assert measured == pytest.approx(r.mbps_at(1024))
    assert ok


def test_anchor_unknown_metric_rejected():
    from repro.core import run_netpipe

    r = run_netpipe(RawTcp(), configs.pc_netgear_ga620())
    a = Anchor("x", "figX", "raw TCP", "nonsense", 1, 0.1, "q")
    with pytest.raises(ValueError):
        a.evaluate(r)


def test_anchors_for_filters():
    assert all(a.experiment == "fig1" for a in anchors_for("fig1"))
    assert anchors_for("nope") == []


def test_audit_raises_on_missing_label():
    exp = Experiment(
        id="fig1",  # fig1 anchors reference many labels
        title="t",
        description="d",
        entries=(ExperimentEntry("raw TCP", RawTcp(), configs.pc_netgear_ga620()),),
    )
    with pytest.raises(KeyError):
        exp.audit()


def test_experiment_rejects_duplicate_labels():
    e = ExperimentEntry("raw TCP", RawTcp(), configs.pc_netgear_ga620())
    exp = Experiment(id="x", title="t", description="d", entries=(e, e))
    with pytest.raises(ValueError):
        exp.run(sizes=[1, 64])


def test_configs_are_fresh_instances():
    assert configs.pc_netgear_ga620() == configs.pc_netgear_ga620()
    assert configs.pc_trendnet().nic.driver == "ns83820"
    assert configs.ds20_syskonnect_jumbo().effective_mtu == 9000
    assert configs.pc_giganet().back_to_back is False
    assert configs.pc_myrinet().nic.kind.value == "myrinet"


def test_untuned_config_variants():
    tuned = configs.pc_trendnet(tuned=True)
    untuned = configs.pc_trendnet(tuned=False)
    assert tuned.sysctl.maximum > untuned.sysctl.maximum


def test_audit_rows_render():
    rows = FIG1.audit(sizes=netpipe_sizes(stop=8 * MB))
    for r in rows:
        text = r.render()
        assert ("PASS" in text) or ("MISS" in text)
        assert r.anchor.id in text


def test_experiments_md_generation():
    from repro.experiments.audit import render_experiments_md

    text = render_experiments_md()
    assert "Anchor summary" in text
    for fig in ALL_FIGURES:
        assert fig.title in text
    assert "T1" in text and "T3" in text
    # No misses in the generated document.
    assert "| MISS |" not in text
