"""Serve tier: the newline-JSON wire protocol and the CLI entry point.

Every test binds port 0 (kernel-assigned ephemeral port) on loopback,
so the suite never collides with anything and never needs the network.
"""

import asyncio
import json

import pytest

from repro.exec import ExecPolicy, execute_sweeps
from repro.serve import MAX_LINE_BYTES, ServeCore, ServeFrontend, ServeQuery

pytestmark = pytest.mark.serve

SIZES = (1, 64, 1024)


def _core(**kw):
    kw.setdefault("policy", ExecPolicy(max_workers=1, backoff=0.001))
    return ServeCore(**kw)


async def _exchange(reader, writer, request) -> dict:
    """One protocol round trip: send a request line, parse the answer."""
    raw = request if isinstance(request, bytes) else (
        json.dumps(request).encode()
    )
    writer.write(raw + b"\n")
    await writer.drain()
    line = await reader.readline()
    assert line.endswith(b"\n")
    return json.loads(line)


def _with_frontend(test_body):
    """Run ``test_body(core, reader, writer)`` against a live frontend."""
    async def run():
        core = _core()
        frontend = ServeFrontend(core)
        host, port = await frontend.start()
        assert port != 0  # the kernel assigned a real ephemeral port
        reader, writer = await asyncio.open_connection(host, port)
        try:
            return await test_body(core, reader, writer)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
            await frontend.aclose()

    return asyncio.run(run())


def test_ping_query_stats_over_one_connection():
    """The three ops all answer on a single persistent connection, and
    the served curve matches a direct executor call bit-for-bit."""
    query = {"library": "mpich", "sizes": list(SIZES)}

    async def body(core, reader, writer):
        pong = await _exchange(reader, writer, {"op": "ping"})
        answered = await _exchange(
            reader, writer, {"op": "query", "query": query}
        )
        again = await _exchange(
            reader, writer, {"op": "query", "query": query}
        )
        stats = await _exchange(reader, writer, {"op": "stats"})
        return pong, answered, again, stats

    pong, answered, again, stats = _with_frontend(body)
    assert pong == {"ok": True, "pong": True}

    assert answered["ok"] and answered["response"]["source"] == "computed"
    direct, _ = execute_sweeps(
        [ServeQuery(library="mpich", sizes=SIZES).resolve()]
    )
    served = answered["response"]["curve"]["points"]
    assert served == [
        {"size": p.size, "oneway_time": p.oneway_time}
        for p in direct[0].points
    ]
    assert again["response"]["source"] == "hot"
    assert again["response"]["curve"] == answered["response"]["curve"]

    assert stats["ok"]
    assert stats["stats"]["requests"] == 2
    assert stats["stats"]["sources"]["hot"] == 1


def test_protocol_errors_are_typed_not_disconnects():
    """Bad JSON, non-objects, unknown ops, and bad queries all answer
    with a typed error and leave the connection usable."""
    async def body(core, reader, writer):
        answers = []
        for request in (
            b"this is not json",
            b'"just a string"',
            {"op": "launch-missiles"},
            {"op": "query", "query": {"library": "openmpi"}},
            {"op": "query", "query": {"library": "mpich", "mtu": -5}},
            {"op": "query"},
        ):
            answers.append(await _exchange(reader, writer, request))
        # The connection survived all of the above.
        answers.append(await _exchange(reader, writer, {"op": "ping"}))
        return answers

    *errors, pong = _with_frontend(body)
    for answer in errors:
        assert answer["ok"] is False
        assert answer["error"]["kind"] == "bad-request"
        assert answer["error"]["detail"]
    assert pong == {"ok": True, "pong": True}


def test_oversized_line_is_rejected():
    """A line past MAX_LINE_BYTES gets a bad-request, then EOF."""
    async def body(core, reader, writer):
        padding = "x" * (MAX_LINE_BYTES + 1024)
        writer.write(json.dumps({"op": "ping", "pad": padding}).encode()
                     + b"\n")
        await writer.drain()
        line = await reader.readline()
        answer = json.loads(line)
        eof = await reader.readline()
        return answer, eof

    answer, eof = _with_frontend(body)
    assert answer["ok"] is False
    assert answer["error"]["kind"] == "bad-request"
    assert "exceeds" in answer["error"]["detail"]
    assert eof == b""  # the frontend dropped the desynchronized stream


def test_concurrent_connections_share_one_core():
    """Two clients asking the same cold question coalesce into one
    simulation — the whole point of sharing the core across clients."""
    query = {"op": "query", "query": {"library": "raw-tcp",
                                      "sizes": list(SIZES)}}

    async def run():
        core = _core()
        frontend = ServeFrontend(core)
        host, port = await frontend.start()

        async def client():
            reader, writer = await asyncio.open_connection(host, port)
            try:
                return await _exchange(reader, writer, query)
            finally:
                writer.close()
                await writer.wait_closed()

        answers = await asyncio.gather(*[client() for _ in range(6)])
        stats = core.stats()
        await frontend.aclose()
        return answers, stats

    answers, stats = asyncio.run(run())
    assert stats["exec"]["simulated"] == 1
    curves = {json.dumps(a["response"]["curve"], sort_keys=True)
              for a in answers}
    assert len(curves) == 1  # identical across clients
    sources = sorted(a["response"]["source"] for a in answers)
    assert sources.count("computed") == 1


def test_cli_one_shot_query(capsys):
    """``repro serve --query`` answers inline and exits 0."""
    from repro.__main__ import main

    query = {"library": "mpich", "sizes": list(SIZES),
             "compare_with": "raw-tcp", "nodes": 8}
    code = main([
        "serve", "--query", json.dumps(query), "--stats",
        "--no-speculate",
    ])
    assert code == 0
    out = capsys.readouterr().out
    # Two JSON documents: the response, then the stats.
    decoder = json.JSONDecoder()
    response, end = decoder.raw_decode(out)
    stats, _ = decoder.raw_decode(out[end:].lstrip())
    assert response["source"] == "computed"
    assert response["metrics"]["max_mbps"] > 0
    assert response["crossover"]["versus"] == "raw-tcp"
    assert response["cost"]["nodes"] == 8
    assert stats["requests"] == 1


def test_cli_one_shot_bad_query():
    """A malformed --query surfaces the typed error, nonzero exit."""
    from repro.__main__ import main
    from repro.serve import BadRequestError

    with pytest.raises(BadRequestError):
        main(["serve", "--query", json.dumps({"library": "openmpi"})])
