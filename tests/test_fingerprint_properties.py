"""Property-based tests (hypothesis) for the sweep-fingerprint contract.

The content-addressed cache is only safe if fingerprints behave like
true content hashes: equal inputs collide, different ``repeats`` or
``sizes`` never do, and the digest is identical in every process —
including processes with a different ``PYTHONHASHSEED``, where any
accidental reliance on ``hash()`` ordering would show up immediately.
On top of that, ``execute_sweeps`` must be request-order independent:
the batch is a *set* of sweeps, and each label's curve cannot depend
on where in the list it was asked for.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import SweepRequest, execute_sweeps, sweep_fingerprint
from repro.experiments import configs
from repro.mplib import Mpich, MpLite, Pvm, RawTcp

pytestmark = pytest.mark.exec_smoke

CFG = configs.pc_netgear_ga620()
#: A few sizes are enough: these properties are about identity, not curves.
TINY = (1, 64, 1024)

LIBS = {
    "tcp": RawTcp,
    "mpich": lambda: Mpich.tuned(),
    "mplite": MpLite,
    "pvm": lambda: Pvm.tuned(),
}


def _baseline():
    requests = [
        SweepRequest(label, make(), CFG, sizes=TINY)
        for label, make in LIBS.items()
    ]
    results, _ = execute_sweeps(requests)
    return {
        r.label: [(p.size, p.oneway_time) for p in res.points]
        for r, res in zip(requests, results)
    }


BASELINE = None


@given(order=st.permutations(sorted(LIBS)))
@settings(max_examples=10, deadline=None)
def test_results_are_request_order_independent(order):
    global BASELINE
    if BASELINE is None:
        BASELINE = _baseline()
    requests = [
        SweepRequest(label, LIBS[label](), CFG, sizes=TINY) for label in order
    ]
    results, report = execute_sweeps(requests)
    assert [s.label for s in report.stats] == list(order)
    for request, result in zip(requests, results):
        got = [(p.size, p.oneway_time) for p in result.points]
        assert got == BASELINE[request.label], request.label


sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=1 << 20),
    min_size=1, max_size=8, unique=True,
).map(lambda xs: tuple(sorted(xs)))


@given(
    repeats_a=st.integers(min_value=1, max_value=4),
    repeats_b=st.integers(min_value=1, max_value=4),
    sizes_a=sizes_strategy,
    sizes_b=sizes_strategy,
)
@settings(max_examples=60, deadline=None)
def test_fingerprint_is_injective_over_repeats_and_sizes(
    repeats_a, repeats_b, sizes_a, sizes_b
):
    fp_a = sweep_fingerprint(RawTcp(), CFG, sizes_a, repeats_a)
    fp_b = sweep_fingerprint(RawTcp(), CFG, sizes_b, repeats_b)
    if (repeats_a, sizes_a) == (repeats_b, sizes_b):
        assert fp_a == fp_b
    else:
        assert fp_a != fp_b


@given(repeats=st.integers(min_value=1, max_value=4), sizes=sizes_strategy)
@settings(max_examples=30, deadline=None)
def test_fingerprint_is_pure(repeats, sizes):
    # Recomputation in the same process is exact — no hidden state.
    assert sweep_fingerprint(RawTcp(), CFG, sizes, repeats) == sweep_fingerprint(
        RawTcp(), CFG, sizes, repeats
    )


def _fingerprint_in_subprocess(hash_seed: str) -> str:
    """One fingerprint computed by a fresh interpreter."""
    src = Path(__file__).resolve().parent.parent / "src"
    code = (
        "from repro.exec import sweep_fingerprint\n"
        "from repro.experiments import configs\n"
        "from repro.mplib import Mpich\n"
        "print(sweep_fingerprint(Mpich.tuned(), configs.pc_netgear_ga620(), "
        "(1, 64, 1024), 3, salt='xproc'))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}{env.get('PYTHONPATH', '')}"
    env["PYTHONHASHSEED"] = hash_seed
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True, env=env,
    )
    return out.stdout.strip()


def test_fingerprint_round_trips_across_processes():
    local = sweep_fingerprint(
        Mpich.tuned(), configs.pc_netgear_ga620(), (1, 64, 1024), 3,
        salt="xproc",
    )
    # Two different hash seeds: any dict/set-order dependence would
    # produce a different canonical form in at least one of them.
    assert _fingerprint_in_subprocess("0") == local
    assert _fingerprint_in_subprocess("424242") == local
