"""Unit-conversion helpers: the only place Mbps/us appear."""

import pytest

from repro.units import BITS_PER_BYTE, KB, MB, kb, mbps, mbytes_per_s, to_mbps, to_us, us


def test_us_roundtrip():
    assert to_us(us(123.0)) == pytest.approx(123.0)


def test_us_is_seconds():
    assert us(1_000_000) == pytest.approx(1.0)


def test_mbps_roundtrip():
    assert to_mbps(mbps(550.0)) == pytest.approx(550.0)


def test_mbps_is_decimal_megabits():
    # 1000 Mb/s = 125 MB/s
    assert mbps(1000) == pytest.approx(125e6)


def test_mbytes_per_s():
    assert mbytes_per_s(200) == pytest.approx(200e6)


def test_kb_is_binary():
    assert kb(32) == 32 * 1024
    assert KB == 1024 and MB == 1024 * 1024


def test_bits_per_byte():
    assert BITS_PER_BYTE == 8


def test_converter_dimension_table_covers_every_converter():
    # repro.check's dimension rules key off this table; a converter
    # missing from it silently escapes dim-* analysis.
    import repro.units as units

    public_callables = {
        name
        for name in dir(units)
        if not name.startswith("_") and callable(getattr(units, name))
    }
    assert set(units.CONVERTER_DIMENSIONS) == public_callables
    for dimension, role in units.CONVERTER_DIMENSIONS.values():
        assert dimension in {"time", "size", "rate"}
        assert role in {"si", "display"}
