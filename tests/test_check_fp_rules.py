"""Fixture-driven tests of the fp-* fingerprint-completeness family.

Each mutant plants one divergence between a cache key and the value it
stores; each must fire exactly its rule at the ``put`` call.  The good
fixture proves a complete fingerprint plus benign retry plumbing stays
silent, and the scope test proves the family only has opinions inside
the cache-owning packages.
"""

from pathlib import Path

import pytest

from repro.check import analyze_paths, analyze_source

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).resolve().parent / "check_fixtures"

FP_RULES = frozenset({
    "fp-unsalted-input", "fp-dead-salt", "fp-env-behind-cache",
})


def fp_findings(name):
    findings = analyze_paths([FIXTURES / name], rules=FP_RULES)
    return [(f.rule, f.line) for f in findings]


def fixture_line(name, needle):
    for lineno, line in enumerate(
        (FIXTURES / name).read_text().splitlines(), start=1
    ):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


def test_unsalted_tunable_fires_at_the_put():
    line = fixture_line("fp_unsalted_bad.py", "cache.put(")
    assert fp_findings("fp_unsalted_bad.py") == [
        ("fp-unsalted-input", line),
    ]
    (finding,) = analyze_paths(
        [FIXTURES / "fp_unsalted_bad.py"], rules=FP_RULES
    )
    assert "'tuning'" in finding.message


def test_env_read_behind_the_boundary_fires_at_the_put():
    line = fixture_line("fp_env_bad.py", "cache.put(")
    assert fp_findings("fp_env_bad.py") == [
        ("fp-env-behind-cache", line),
    ]
    (finding,) = analyze_paths([FIXTURES / "fp_env_bad.py"], rules=FP_RULES)
    # The message names both the env chain and the function hiding it.
    assert "os.environ" in finding.message and "compute" in finding.message


def test_dead_salt_fires_at_the_put():
    line = fixture_line("fp_dead_salt_bad.py", "cache.put(")
    assert fp_findings("fp_dead_salt_bad.py") == [
        ("fp-dead-salt", line),
    ]
    (finding,) = analyze_paths(
        [FIXTURES / "fp_dead_salt_bad.py"], rules=FP_RULES
    )
    assert "'legacy'" in finding.message


def test_complete_fingerprint_with_benign_plumbing_stays_silent():
    assert fp_findings("fp_good.py") == []


def test_family_is_scoped_to_cache_owning_packages():
    # The same unsalted mutant in a package without a content-addressed
    # store (the serving layer keys on exec fingerprints upstream) is
    # out of scope.
    source = (FIXTURES / "fp_unsalted_bad.py").read_text().replace(
        "# repro: module=repro.exec.fixture_unsalted",
        "# repro: module=repro.serve.fixture_unsalted",
    )
    assert analyze_source(source, rules=FP_RULES) == []


def test_unused_suppression_mutants():
    findings = analyze_paths([FIXTURES / "unused_allow_bad.py"])
    got = [(f.rule, f.line) for f in findings]
    stale = fixture_line("unused_allow_bad.py", "allow[det-wallclock]")
    typo = fixture_line("unused_allow_bad.py", "allow[det-wallclok]")
    assert got == [
        ("unused-suppression", stale),
        ("unused-suppression", typo),
    ]
    # Under a --rules selection that excludes det-wallclock, the stale
    # allow is out of scope today — but the unknown id always fires.
    narrowed = analyze_paths(
        [FIXTURES / "unused_allow_bad.py"],
        rules=frozenset({"unused-suppression", "fp-dead-salt"}),
    )
    assert [(f.rule, f.line) for f in narrowed] == [
        ("unused-suppression", typo),
    ]
