"""Fabric: N-node network with port contention."""

import pytest

from repro.experiments import configs
from repro.fabric import Fabric, PairEndpoint
from repro.mplib import RawTcp
from repro.sim import Engine
from repro.units import MB, kb


def make_fabric(nranks=4):
    engine = Engine()
    link = RawTcp().link_model(configs.pc_netgear_ga620())
    return engine, Fabric(engine, link, nranks), link


def test_fabric_needs_two_ranks():
    engine = Engine()
    link = RawTcp().link_model(configs.pc_netgear_ga620())
    with pytest.raises(ValueError):
        Fabric(engine, link, 1)


def test_point_to_point_matches_link_model():
    engine, fabric, link = make_fabric()
    size = 1 * MB
    got = {}

    def sender():
        yield from fabric.send(0, 2, size)

    def receiver():
        msg = yield from fabric.recv(2)
        got["at"] = engine.now
        got["src"] = msg.src

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert got["at"] == pytest.approx(link.transfer_time(size))
    assert got["src"] == 0


def test_disjoint_pairs_run_in_parallel():
    engine, fabric, link = make_fabric()
    size = 1 * MB
    arrivals = {}

    def sender(src, dst):
        yield from fabric.send(src, dst, size)

    def receiver(dst):
        yield from fabric.recv(dst)
        arrivals[dst] = engine.now

    engine.process(sender(0, 1))
    engine.process(sender(2, 3))
    engine.process(receiver(1))
    engine.process(receiver(3))
    engine.run()
    # No shared port: both complete in one transfer time.
    assert arrivals[1] == pytest.approx(link.transfer_time(size))
    assert arrivals[3] == pytest.approx(link.transfer_time(size))


def test_two_senders_to_one_destination_serialise():
    engine, fabric, link = make_fabric()
    size = 1 * MB
    arrivals = []

    def sender(src):
        yield from fabric.send(src, 3, size)

    def receiver():
        for _ in range(2):
            yield from fabric.recv(3)
            arrivals.append(engine.now)

    engine.process(sender(0))
    engine.process(sender(1))
    engine.process(receiver())
    engine.run()
    # Second message queued behind the first at rank 3's RX port.
    assert arrivals[1] >= arrivals[0] + link.occupancy(size) * 0.99


def test_one_sender_to_two_destinations_serialises_at_tx():
    engine, fabric, link = make_fabric()
    size = 1 * MB
    arrivals = {}

    def sender():
        yield from fabric.send(0, 1, size)
        yield from fabric.send(0, 2, size)

    def receiver(dst):
        yield from fabric.recv(dst)
        arrivals[dst] = engine.now

    engine.process(sender())
    engine.process(receiver(1))
    engine.process(receiver(2))
    engine.run()
    assert arrivals[2] >= arrivals[1] + link.occupancy(size) * 0.99


def test_self_send_rejected():
    engine, fabric, _ = make_fabric()

    def prog():
        yield from fabric.send(1, 1, 10)

    engine.process(prog())
    with pytest.raises(ValueError):
        engine.run()


def test_rank_bounds_checked():
    engine, fabric, _ = make_fabric(3)
    with pytest.raises(ValueError):
        fabric.pair(0, 5)
    with pytest.raises(ValueError):
        fabric.pair(2, 2)


def test_filtered_recv_by_source_and_tag():
    engine, fabric, _ = make_fabric()
    got = []

    def senders():
        yield from fabric.send(0, 3, 10, tag="a")
        yield from fabric.send(1, 3, 10, tag="b")

    def receiver():
        msg = yield from fabric.recv(3, src=1, tag="b")
        got.append((msg.src, msg.tag))
        msg = yield from fabric.recv(3, src=0)
        got.append((msg.src, msg.tag))

    engine.process(senders())
    engine.process(receiver())
    engine.run()
    assert got == [(1, "b"), (0, "a")]


def test_pair_endpoint_isolates_conversations():
    engine, fabric, _ = make_fabric()
    pair_03 = fabric.pair(3, 0)
    got = {}

    def sender_0():
        ep = fabric.pair(0, 3)
        yield from ep.send(10, tag="data")

    def sender_1():
        yield from fabric.send(1, 3, 99, tag="data")

    def receiver():
        msg = yield from pair_03.recv(tag="data")
        got["size"] = msg.size
        got["src"] = msg.src

    engine.process(sender_1())
    engine.process(sender_0())
    engine.process(receiver())
    engine.run(until=10.0)
    # The pair endpoint only sees rank 0's message, even though rank
    # 1's arrived first.
    assert got == {"size": 10, "src": 0}


def test_message_counter_increments():
    engine, fabric, _ = make_fabric()

    def prog():
        yield from fabric.send(0, 1, 10)

    def rx():
        yield from fabric.recv(1)

    engine.process(prog())
    engine.process(rx())
    engine.run()
    assert fabric.messages_delivered == 1


def test_port_utilisation_finds_the_hotspot():
    from repro.apps import Pattern, generate_destinations
    from repro.experiments import configs as _configs

    engine, fabric, _ = make_fabric(4)
    dests = generate_destinations(Pattern.HOTSPOT, 4, 6)
    expected = {d: 0 for d in range(4)}
    for dsts in dests.values():
        for d in dsts:
            expected[d] += 1

    def sender(src):
        for dst in dests[src]:
            yield from fabric.send(src, dst, 1 << 20)

    def receiver(dst):
        for _ in range(expected[dst]):
            yield from fabric.recv(dst)

    for src in range(4):
        engine.process(sender(src))
    for dst in range(4):
        if expected[dst]:
            engine.process(receiver(dst))
    engine.run()
    util = fabric.port_utilisation()
    rx = [u[1] for u in util]
    # Rank 0's RX port is the hot one.
    assert rx[0] == max(rx)
    assert rx[0] > 0.8
    assert all(r < 0.5 for r in rx[2:])
