"""CPU-load accounting across the transport models."""

import pytest

from repro.analysis import CpuLoadReport, cpu_load
from repro.experiments import configs
from repro.net.gm import GmModel, GmReceiveMode
from repro.net.tcp import TcpModel, TcpTuning
from repro.net.via import ViaModel
from repro.units import MB, kb

TCP = TcpModel(configs.pc_netgear_ga620(), TcpTuning(sockbuf_request=kb(512)))


def test_tcp_cpu_scales_with_size():
    tx1, rx1 = TCP.cpu_times(1 * MB)
    tx2, rx2 = TCP.cpu_times(2 * MB)
    assert tx2 > 1.8 * tx1 and rx2 > 1.8 * rx1


def test_tcp_receive_is_the_expensive_side():
    tx, rx = TCP.cpu_times(1 * MB)
    assert rx > tx


def test_tcp_rx_availability_near_zero_at_standard_mtu():
    """The rx CPU stage *is* the 550 Mb/s bottleneck, so the receiver
    has essentially nothing left — the era's motivation for OS bypass."""
    _, rx_avail = TCP.cpu_availability(1 * MB)
    assert rx_avail < 0.1


def test_jumbo_frames_free_the_cpu():
    std = TcpModel(configs.pc_syskonnect(), TcpTuning(sockbuf_request=kb(512)))
    jumbo = TcpModel(
        configs.pc_syskonnect(jumbo=True), TcpTuning(sockbuf_request=kb(512))
    )
    assert jumbo.cpu_times(MB)[1] < 0.5 * std.cpu_times(MB)[1]


def test_gm_blocking_frees_receiver():
    myri = configs.pc_myrinet()
    polling = GmModel(myri, GmReceiveMode.POLLING)
    blocking = GmModel(myri, GmReceiveMode.BLOCKING)
    assert polling.cpu_availability(MB)[1] < 0.05
    assert blocking.cpu_availability(MB)[1] > 0.95


def test_gm_hybrid_caps_the_spin():
    hybrid = GmModel(configs.pc_myrinet())
    _, rx_small = hybrid.cpu_times(kb(1))
    _, rx_big = hybrid.cpu_times(8 * MB)
    # The spin quantum bounds the cost: big transfers don't spin more.
    assert rx_big < rx_small + hybrid.HYBRID_SPIN_QUANTUM + 1e-4


def test_hardware_via_host_cost_constant():
    via = ViaModel(configs.pc_giganet())
    assert via.cpu_times(kb(1)) == via.cpu_times(8 * MB)


def test_software_via_is_tcp_class():
    mvia = ViaModel(configs.pc_syskonnect())
    hw = ViaModel(configs.pc_giganet())
    assert mvia.cpu_times(MB)[1] > 100 * hw.cpu_times(MB)[1]


def test_cpu_load_report_fields():
    r = cpu_load(TCP, 1 * MB, "tcp")
    assert isinstance(r, CpuLoadReport)
    assert r.transport == "tcp"
    assert 0 <= r.tx_availability <= 1
    assert 0 <= r.rx_availability <= 1
    assert r.cpu_seconds_per_mb > 0


def test_cpu_times_validation():
    with pytest.raises(ValueError):
        TCP.cpu_times(-1)


def test_zero_bytes_report():
    r = cpu_load(TCP, 0, "tcp")
    assert r.cpu_seconds_per_mb == 0.0
