"""Chaos tier: every injected fault class recovers, observably.

Each test injects a deterministic failure (:mod:`repro.faults`) into a
sweep batch and proves three things: the run *completes*, the results
are *identical* to the fault-free run (retries re-run a deterministic
engine), and the :class:`~repro.exec.RunReport` *records* the recovery
(attempts, timeouts, degradation, events) so nothing fails silently.
"""

import warnings

import pytest

from repro.core import netpipe_sizes
from repro.exec import (
    SweepCache,
    SweepExecutionError,
    SweepRequest,
    execute_sweeps,
)
from repro.experiments import configs
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_result,
)
from repro.mplib import Mpich, MpLite, Pvm, RawTcp

pytestmark = pytest.mark.faults

CFG = configs.pc_netgear_ga620()
#: Tiny schedule: these tests are about recovery, not curves.
SIZES = tuple(netpipe_sizes(stop=1 << 12))
#: Keep retry backoff negligible for test wall time.
FAST = dict(backoff=0.001)


def _requests():
    return [
        SweepRequest("tcp", RawTcp(), CFG, sizes=SIZES),
        SweepRequest("mpich", Mpich.tuned(), CFG, sizes=SIZES),
        SweepRequest("mplite", MpLite(), CFG, sizes=SIZES),
        SweepRequest("pvm", Pvm.tuned(), CFG, sizes=SIZES),
    ]


def _curves(results):
    return [[(p.size, p.oneway_time) for p in r.points] for r in results]


@pytest.fixture(scope="module")
def baseline():
    """The fault-free outcome every chaos run must reproduce exactly."""
    results, report = execute_sweeps(_requests())
    assert report.retries_performed == 0 and not report.events
    return _curves(results)


# ---------------------------------------------------------------------------
# the FaultPlan itself


def test_plan_windows_stack_per_label():
    plan = FaultPlan((
        FaultSpec("a", FaultKind.CRASH, times=1),
        FaultSpec("a", FaultKind.RAISE, times=2),
        FaultSpec("b", FaultKind.HANG, times=1, hang_seconds=0.5),
    ))
    assert plan.action_for("a", 0).kind is FaultKind.CRASH
    assert plan.action_for("a", 1).kind is FaultKind.RAISE
    assert plan.action_for("a", 2).kind is FaultKind.RAISE
    assert plan.action_for("a", 3) is None
    assert plan.action_for("b", 0).kind is FaultKind.HANG
    assert plan.action_for("b", 1) is None
    assert plan.action_for("c", 0) is None
    assert plan.labels() == ["a", "b"]
    assert bool(plan) and not bool(FaultPlan())


def test_plan_validates():
    with pytest.raises(ValueError):
        FaultSpec("a", FaultKind.RAISE, times=0)
    with pytest.raises(ValueError):
        FaultSpec("a", FaultKind.HANG, hang_seconds=0.0)
    with pytest.raises(TypeError):
        FaultPlan(("not a spec",))
    with pytest.raises(ValueError):
        FaultPlan.seeded(["a"], seed=1, rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan.seeded(["a"], seed=1, kinds=())


def test_seeded_plan_is_deterministic_and_seed_sensitive():
    labels = [f"sweep-{i}" for i in range(40)]
    one = FaultPlan.seeded(labels, seed=7, kinds=tuple(FaultKind), rate=0.5)
    two = FaultPlan.seeded(labels, seed=7, kinds=tuple(FaultKind), rate=0.5)
    assert one == two  # no hidden RNG state anywhere
    other = FaultPlan.seeded(labels, seed=8, kinds=tuple(FaultKind), rate=0.5)
    assert one != other
    assert FaultPlan.seeded(labels, seed=7, rate=0.0).specs == ()
    everyone = FaultPlan.seeded(labels, seed=7, rate=1.0)
    assert everyone.labels() == labels


# ---------------------------------------------------------------------------
# fault class 1: transient exception


def test_transient_raise_recovers(baseline):
    plan = FaultPlan.single("mpich", FaultKind.RAISE, times=2)
    results, report = execute_sweeps(_requests(), fault_plan=plan, **FAST)
    assert _curves(results) == baseline
    by_label = {s.label: s for s in report.stats}
    assert by_label["mpich"].attempts == 3
    assert by_label["tcp"].attempts == 1
    assert report.retries_performed == 2
    kinds = [e.kind for e in report.events]
    assert kinds == ["fault", "fault"]
    assert all("InjectedFault" in e.detail for e in report.events)
    assert "x3 attempts" in report.render()


def test_retry_budget_exhausts_with_clear_error():
    plan = FaultPlan.single("mpich", FaultKind.RAISE, times=5)
    with pytest.raises(SweepExecutionError, match="'mpich'.*3 attempt"):
        execute_sweeps(_requests(), fault_plan=plan, retries=2, **FAST)


# ---------------------------------------------------------------------------
# fault class 2: hang past the deadline


def test_hang_is_timed_out_and_retried_serially(baseline):
    plan = FaultPlan.single("pvm", FaultKind.HANG, hang_seconds=0.2)
    results, report = execute_sweeps(
        _requests(), fault_plan=plan, timeout=0.05, **FAST
    )
    assert _curves(results) == baseline
    by_label = {s.label: s for s in report.stats}
    assert by_label["pvm"].timed_out and by_label["pvm"].attempts == 2
    assert report.timeouts == 1
    assert [e.kind for e in report.events] == ["timeout"]
    assert "TIMEOUT" in report.render()


def test_hang_is_timed_out_and_retried_in_pool(baseline):
    plan = FaultPlan.single("tcp", FaultKind.HANG, hang_seconds=1.0)
    results, report = execute_sweeps(
        _requests(), max_workers=2, fault_plan=plan, timeout=0.25, **FAST
    )
    assert _curves(results) == baseline
    by_label = {s.label: s for s in report.stats}
    assert by_label["tcp"].timed_out and by_label["tcp"].attempts == 2
    assert any(e.kind == "timeout" for e in report.events)
    assert not report.degraded_to_serial  # an abandoned worker is not a break


# ---------------------------------------------------------------------------
# fault class 3: corrupted result


def test_corrupt_result_is_rejected_and_retried(baseline):
    plan = FaultPlan.single("mplite", FaultKind.CORRUPT)
    results, report = execute_sweeps(_requests(), fault_plan=plan, **FAST)
    assert _curves(results) == baseline
    by_label = {s.label: s for s in report.stats}
    assert by_label["mplite"].attempts == 2
    assert [e.kind for e in report.events] == ["corrupt-result"]
    assert "non-physical" in report.events[0].detail


def test_corruption_never_poisons_the_cache(tmp_path, baseline):
    cache = SweepCache(tmp_path)
    plan = FaultPlan.single("tcp", FaultKind.CORRUPT)
    execute_sweeps(_requests(), cache=cache, fault_plan=plan, **FAST)
    warm, report = execute_sweeps(_requests(), cache=cache)
    assert report.sweeps_simulated == 0  # every entry was good enough to trust
    assert _curves(warm) == baseline


def test_corrupt_result_helper_is_always_detectable():
    (clean,), _ = execute_sweeps([_requests()[0]])
    damaged = corrupt_result(clean)
    assert [p.size for p in damaged.points] == [p.size for p in clean.points]
    assert all(p.oneway_time < 0 for p in damaged.points)


# ---------------------------------------------------------------------------
# fault class 4: hard worker crash -> pool break -> serial degradation


def test_worker_crash_degrades_to_serial(baseline):
    plan = FaultPlan.single("mpich", FaultKind.CRASH)
    results, report = execute_sweeps(
        _requests(), max_workers=2, fault_plan=plan, **FAST
    )
    assert _curves(results) == baseline
    assert report.degraded_to_serial
    broken = [e for e in report.events if e.kind == "pool-broken"]
    assert len(broken) == 1 and broken[0].label == "<pool>"
    by_label = {s.label: s for s in report.stats}
    assert by_label["mpich"].attempts >= 2  # pool attempt + serial re-run
    assert "re-run serially" in report.render()


def test_crash_outside_a_pool_downgrades_to_retryable_exception(baseline):
    # Serial mode must never let an injected crash kill the main process.
    plan = FaultPlan.single("mpich", FaultKind.CRASH)
    results, report = execute_sweeps(_requests(), fault_plan=plan, **FAST)
    assert _curves(results) == baseline
    assert not report.degraded_to_serial
    assert [e.kind for e in report.events] == ["fault"]
    assert "InjectedWorkerCrash" in report.events[0].detail


# ---------------------------------------------------------------------------
# the acceptance batch: crash + hang + transient raise together


def test_chaos_batch_completes_with_correct_results(baseline):
    plan = FaultPlan((
        FaultSpec("mpich", FaultKind.CRASH),
        FaultSpec("pvm", FaultKind.HANG, hang_seconds=1.0),
        FaultSpec("mplite", FaultKind.RAISE),
    ))
    results, report = execute_sweeps(
        _requests(), max_workers=2, fault_plan=plan,
        timeout=10.0, retries=3, **FAST,
    )
    assert _curves(results) == baseline
    assert report.degraded_to_serial  # the crash broke the pool
    assert report.retries_performed >= 1
    assert len(report.stats) == len(_requests())
    text = report.render()
    assert "re-run serially" in text and "pool-broken" in text


# ---------------------------------------------------------------------------
# robustness plumbing around the faults


def test_no_plan_means_no_events_and_single_attempts(baseline):
    results, report = execute_sweeps(_requests())
    assert _curves(results) == baseline
    assert all(s.attempts == 1 and not s.timed_out for s in report.stats)
    assert report.events == [] and report.retries_performed == 0


def test_cache_write_failure_is_a_warning_not_an_error(tmp_path, monkeypatch, baseline):
    def boom(result, path):
        raise OSError("disk full")

    monkeypatch.setattr("repro.exec.cache.save_result", boom)
    cache = SweepCache(tmp_path)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results, report = execute_sweeps(_requests(), cache=cache)
    assert _curves(results) == baseline  # the run itself is unharmed
    assert cache.write_errors == len(_requests())
    assert any("disk full" in str(w.message) for w in caught)
    failed = [e for e in report.events if e.kind == "cache-write-failed"]
    assert len(failed) == len(_requests())


def test_injected_fault_is_an_exception_not_a_baseclass_catch():
    with pytest.raises(InjectedFault):
        from repro.faults import apply_pre_fault

        apply_pre_fault(FaultSpec("x", FaultKind.RAISE), allow_crash=True)


def test_env_knobs_parse_with_clear_messages(monkeypatch):
    from repro.exec import (
        RETRIES_ENV,
        TIMEOUT_ENV,
        default_retries,
        default_timeout,
    )

    monkeypatch.delenv(TIMEOUT_ENV, raising=False)
    monkeypatch.delenv(RETRIES_ENV, raising=False)
    assert default_timeout() is None
    assert default_retries() == 2
    monkeypatch.setenv(TIMEOUT_ENV, "2.5")
    assert default_timeout() == 2.5
    monkeypatch.setenv(TIMEOUT_ENV, "soon")
    with pytest.raises(ValueError, match="REPRO_EXEC_TIMEOUT.*'soon'"):
        default_timeout()
    monkeypatch.setenv(TIMEOUT_ENV, "-1")
    with pytest.raises(ValueError, match="REPRO_EXEC_TIMEOUT"):
        default_timeout()
    monkeypatch.setenv(RETRIES_ENV, "0")
    assert default_retries() == 0
    monkeypatch.setenv(RETRIES_ENV, "many")
    with pytest.raises(ValueError, match="REPRO_EXEC_RETRIES.*'many'"):
        default_retries()
