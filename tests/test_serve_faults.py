"""Serve chaos tier: injected faults through the serving pipeline.

The serving layer inherits the executor's hardening — these tests
prove the inheritance holds end-to-end: a crashing or lying worker
under a live query still produces the fault-free answer, and cache
damage (corrupt entries, the legacy flat layout) degrades to a miss
or a migration, never to a wrong curve.
"""

import asyncio
import os

import pytest

from repro.exec import ExecPolicy, SweepCache
from repro.faults import FaultKind, FaultPlan
from repro.serve import ServeCore, ServeQuery

pytestmark = [pytest.mark.serve, pytest.mark.faults]

SIZES = (1, 64, 1024)
QUERY = ServeQuery(library="mpich", sizes=SIZES)


def _policy(**kw):
    kw.setdefault("max_workers", 1)
    kw.setdefault("backoff", 0.001)
    kw.setdefault("retries", 2)
    return ExecPolicy(**kw)


def _ask(core: ServeCore):
    """Answer QUERY on a fresh event loop, closing the core after."""
    async def run():
        try:
            return await core.query(QUERY), core.stats()
        finally:
            await core.aclose()

    return asyncio.run(run())


def _points(result):
    return [(p.size, p.oneway_time) for p in result.points]


@pytest.fixture(scope="module")
def baseline():
    """The fault-free curve every chaos answer must reproduce exactly."""
    response, stats = _ask(ServeCore(policy=_policy()))
    assert stats["exec"]["retries"] == 0
    return _points(response.result)


@pytest.mark.parametrize(
    "kind", [FaultKind.CRASH, FaultKind.RAISE, FaultKind.CORRUPT],
    ids=["crash", "raise", "corrupt"],
)
def test_worker_fault_mid_request_still_answers(kind, baseline):
    """A worker that crashes, raises, or lies on the first attempt is
    retried; the query still answers with the fault-free curve.

    A serve query is a single-sweep batch, so the executor runs it
    serially in-process and a CRASH downgrades to an exception on the
    retry path (the pool-break degradation itself is exercised by the
    multi-sweep batches in tests/test_exec_faults.py).
    """
    core = ServeCore(
        policy=_policy(max_workers=2),
        fault_plan=FaultPlan.single(QUERY.library, kind),
    )
    response, stats = _ask(core)
    assert _points(response.result) == baseline  # recovery is exact
    assert response.source == "computed"
    assert stats["exec"]["retries"] == 1  # the fault cost one retry
    assert stats["exec"]["simulated"] == 1


def test_fault_exhausting_retries_surfaces_typed_failure(baseline):
    """A fault outlasting the retry budget fails the query loudly — and
    only that query: the core keeps serving afterwards."""
    from repro.exec import SweepExecutionError

    core = ServeCore(
        policy=_policy(retries=1),
        fault_plan=FaultPlan.single(QUERY.library, FaultKind.RAISE, times=3),
    )

    async def run():
        with pytest.raises(SweepExecutionError, match="mpich"):
            await core.query(QUERY)
        # The failure was not cached anywhere; an unfaulted library
        # still answers on the same core.
        response = await core.query(
            ServeQuery(library="raw-tcp", sizes=SIZES)
        )
        stats = core.stats()
        await core.aclose()
        return response, stats

    response, stats = asyncio.run(run())
    assert response.source == "computed"
    assert stats["inflight"] == 0  # the failed future was cleaned up
    assert stats["hot"]["size"] == 1  # only the good answer was kept


def test_corrupt_sharded_entry_reads_as_miss_and_is_repaired(
    tmp_path, baseline
):
    """A truncated cache entry under a shard is a miss, not an error:
    the query re-simulates, answers correctly, and heals the entry."""
    root = tmp_path / "cache"
    response, _ = _ask(ServeCore(cache=SweepCache(root), policy=_policy()))
    entry = SweepCache(root).path_for(response.fingerprint)
    assert entry.exists() and entry.parent.name == response.fingerprint[:2]
    entry.write_text(entry.read_text()[: 40])  # truncate mid-document

    cache = SweepCache(root)
    healed, stats = _ask(ServeCore(cache=cache, policy=_policy()))
    assert _points(healed.result) == baseline
    assert healed.source == "computed"  # corrupt == miss, so it re-ran
    assert cache.corrupt == 1
    assert stats["disk"]["corrupt"] == 1
    # The entry was repaired in place by the re-simulation's write.
    assert cache.get(response.fingerprint) is not None


def test_flat_legacy_entry_migrates_through_the_serve_path(
    tmp_path, baseline
):
    """An entry in the pre-shard flat layout is served as a disk hit
    and promoted into its shard on the way — cache warmth survives the
    layout change."""
    root = tmp_path / "cache"
    response, _ = _ask(ServeCore(cache=SweepCache(root), policy=_policy()))
    fingerprint = response.fingerprint
    sharded = SweepCache(root).path_for(fingerprint)
    flat = SweepCache(root).flat_path_for(fingerprint)
    os.replace(sharded, flat)  # regress the entry to the flat layout
    os.rmdir(sharded.parent)

    cache = SweepCache(root)
    assert cache.shard_counts() == {"": 1}
    served, stats = _ask(ServeCore(cache=cache, policy=_policy()))
    assert _points(served.result) == baseline
    assert served.source == "disk"  # warmth survived
    assert stats["exec"]["simulated"] == 0
    assert cache.migrated == 1
    assert sharded.exists() and not flat.exists()
    assert cache.shard_counts() == {fingerprint[:2]: 1}
