"""End-to-end scenario runs: bit-identity, determinism, store replay.

The acceptance bar for the scenario layer is that it adds nothing to
the physics: a quiet 2-rank spec must reproduce the existing two-node
sweep *bit for bit*, background traffic must slow the foreground down
deterministically, and a warm store replay must be byte-identical to
the run that filled it.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.exec import SweepRequest, execute_sweeps
from repro.experiments import configs
from repro.mplib import REGISTRY
from repro.scenario import (
    ScenarioSpec,
    ScenarioStore,
    TopologySpec,
    TrafficSpec,
    CpuSpec,
    WorkloadSpec,
    load_spec,
    run_scenario,
)
from repro.scenario.cli import main as scenario_main

pytestmark = pytest.mark.scenario

SIZES = (64, 1024, 16384)
EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="t", library="mpich", config="pc_netgear_ga620",
        workload=WorkloadSpec(sizes=SIZES),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# -- bit-identity with the existing executor ---------------------------------
def test_quiet_two_rank_matches_execute_sweeps_bit_for_bit():
    spec = _spec()
    result, report = run_scenario(spec)
    assert report.attempts == 1 and not report.cached

    requests = [SweepRequest(
        "t", REGISTRY["mpich"](), configs.pc_netgear_ga620(), sizes=SIZES,
    )]
    (expected,), _ = execute_sweeps(requests)

    assert result.curve is not None
    got = [(p.size, p.oneway_time) for p in result.curve.points]
    want = [(p.size, p.oneway_time) for p in expected.points]
    assert got == want  # exact float equality — same engine, same path
    assert result.quiet_completion_time is None
    assert result.slowdown == 1.0


def test_example_fig1_is_the_figure_one_curve():
    spec = load_spec(EXAMPLES / "fig1_mpich_quiet.toml")
    assert spec.is_two_node_baseline()
    result, _ = run_scenario(spec)
    (expected,), _ = execute_sweeps([SweepRequest(
        "fig1", REGISTRY[spec.library](), configs.pc_netgear_ga620(),
    )])
    assert [(p.size, p.oneway_time) for p in result.curve.points] == \
        [(p.size, p.oneway_time) for p in expected.points]


def test_fig3_example_degenerates_to_the_baseline_when_stripped():
    # Removing the congestion knobs from the 16-rank example must land
    # exactly on the plain two-node curve for its library/config.
    spec = load_spec(EXAMPLES / "fig3_background_alltoall.toml")
    stripped = dataclasses.replace(
        spec, nranks=2, traffic=(), topology=TopologySpec(),
        workload=dataclasses.replace(spec.workload, ranks=(0, 1)),
    )
    assert stripped.is_two_node_baseline()
    result, _ = run_scenario(stripped)
    (expected,), _ = execute_sweeps([SweepRequest(
        "fig3", REGISTRY[spec.library](),
        configs.ds20_syskonnect_jumbo(), sizes=spec.workload.sizes,
    )])
    assert [(p.size, p.oneway_time) for p in result.curve.points] == \
        [(p.size, p.oneway_time) for p in expected.points]


# -- congestion physics ------------------------------------------------------
def test_background_traffic_slows_the_foreground():
    noisy = _spec(
        nranks=4,
        traffic=(TrafficSpec(kind="alltoall", rate=0.3),),
    )
    result, _ = run_scenario(noisy)
    assert result.quiet_completion_time is not None
    assert result.slowdown > 1.0
    assert result.background_bytes > 0
    assert all(f.achieved_mbps > 0 for f in result.flows)


def test_noisy_run_is_deterministic():
    spec = _spec(nranks=4, traffic=(TrafficSpec(kind="onoff", rate=0.4),))
    first, _ = run_scenario(spec)
    second, _ = run_scenario(spec)
    assert first.to_jsonable() == second.to_jsonable()


def test_seed_changes_the_traffic_not_the_quiet_baseline():
    a, _ = run_scenario(_spec(nranks=4, seed=1,
                              traffic=(TrafficSpec(rate=0.5),)))
    b, _ = run_scenario(_spec(nranks=4, seed=2,
                              traffic=(TrafficSpec(rate=0.5),)))
    # Same physics, different phase: baselines agree, interference varies.
    assert a.quiet_completion_time == b.quiet_completion_time
    assert a.completion_time != b.completion_time


def test_two_tier_uplink_hurts_cross_leaf_traffic():
    def run(topology):
        spec = _spec(
            nranks=8, topology=topology,
            workload=WorkloadSpec(ranks=(0, 7), sizes=(16384,), repeats=2),
            traffic=(TrafficSpec(kind="alltoall", rate=0.3),),
        )
        return run_scenario(spec)[0].completion_time

    crossbar = run(TopologySpec())
    two_tier = run(TopologySpec(kind="two-tier", leaf_size=4,
                                uplink_capacity=1))
    assert two_tier > crossbar


def test_cpu_load_dilates_halo_compute():
    quiet = _spec(workload=WorkloadSpec(kind="halo", iterations=3),
                  nranks=4)
    loaded = dataclasses.replace(quiet, cpu=CpuSpec(load=0.5))
    q, _ = run_scenario(quiet)
    l, _ = run_scenario(loaded)
    assert l.completion_time > q.completion_time
    assert l.slowdown > 1.0
    assert l.quiet_completion_time == q.completion_time


# -- the store ---------------------------------------------------------------
def test_store_replay_is_byte_identical(tmp_path):
    store = ScenarioStore(tmp_path / "store")
    spec = _spec(nranks=4, traffic=(TrafficSpec(rate=0.25),))

    cold, cold_report = run_scenario(spec, cache=store)
    assert not cold_report.cached
    warm, warm_report = run_scenario(spec, cache=store)
    assert warm_report.cached and warm_report.attempts == 0
    assert warm_report.fingerprint == cold_report.fingerprint
    assert warm.to_jsonable() == cold.to_jsonable()

    # The quiet twin was cached under its own fingerprint on the way.
    twin_hit = store.get(spec.quiet().fingerprint())
    assert twin_hit is not None
    assert twin_hit.completion_time == cold.quiet_completion_time


def test_store_survives_corrupt_entries(tmp_path):
    store = ScenarioStore(tmp_path / "store")
    spec = _spec()
    result, report = run_scenario(spec, cache=store)
    path = store.path_for(report.fingerprint)
    path.write_text("{ not json")
    replayed, rerun = run_scenario(spec, cache=store)
    assert not rerun.cached  # corrupt entry reads as a miss, not a crash
    assert replayed.to_jsonable() == result.to_jsonable()


def test_trace_bypasses_the_store(tmp_path):
    store = ScenarioStore(tmp_path / "store")
    spec = _spec()
    run_scenario(spec, cache=store)
    result, report = run_scenario(spec, cache=store, trace=True)
    assert not report.cached
    assert report.trace is not None
    assert report.trace.spans  # the engine really was instrumented
    assert result.curve is not None


# -- examples and CLI --------------------------------------------------------
def test_all_example_specs_validate():
    paths = sorted(EXAMPLES.glob("*.toml")) + sorted(EXAMPLES.glob("*.json"))
    assert len(paths) >= 3
    for path in paths:
        spec = load_spec(path)  # load_spec validates
        assert spec.name


def test_cli_validate_and_list(capsys):
    assert scenario_main(["validate", str(EXAMPLES / "fig1_mpich_quiet.toml")]) == 0
    assert "ok" in capsys.readouterr().out
    assert scenario_main(["list", str(EXAMPLES)]) == 0
    out = capsys.readouterr().out
    assert "fig1-mpich-quiet" in out

    bad = EXAMPLES / "does_not_exist.toml"
    assert scenario_main(["validate", str(bad)]) == 2


def test_cli_run_uses_cache(tmp_path, capsys):
    spec_path = tmp_path / "s.json"
    spec_path.write_text(json.dumps(_spec().to_jsonable()))
    cache = tmp_path / "cache"

    assert scenario_main(["run", str(spec_path), "--cache", str(cache)]) == 0
    cold = capsys.readouterr().out
    assert "via simulated" in cold

    assert scenario_main(["run", str(spec_path), "--cache", str(cache)]) == 0
    warm = capsys.readouterr().out
    assert "via store" in warm


def test_cli_rejects_invalid_spec(tmp_path, capsys):
    spec_path = tmp_path / "bad.json"
    spec_path.write_text('{"name": "x", "library": "openmpi"}')
    assert scenario_main(["run", str(spec_path)]) == 2
    err = capsys.readouterr().err
    assert "library" in err
