"""Communicator semantics and collective algorithms."""

import math

import pytest

from repro.cluster import build_world, run_ranks
from repro.experiments import configs
from repro.mplib import Mpich, MpiPro, MpLite, RawTcp, Tcgmsg
from repro.sim import Engine
from repro.units import MB, kb, us

CFG = configs.pc_netgear_ga620()


def world(library, nranks):
    engine = Engine()
    comms = build_world(engine, library, CFG, nranks)
    return engine, comms


def timed(library, nranks, program):
    engine, comms = world(library, nranks)
    return run_ranks(engine, comms, program)


# -- point to point -------------------------------------------------------------
def test_send_recv_across_fabric():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, kb(64))
        elif comm.rank == 1:
            msg = yield from comm.recv(0, kb(64))
            return msg.size
        return None

    results = timed(MpLite(), 3, program)
    assert results[1] == kb(64) + 24  # payload + MP_Lite header


def test_send_to_unknown_peer_rejected():
    def program(comm):
        if comm.rank == 0:
            yield from comm.send(7, 10)
        if False:
            yield

    engine, comms = world(MpLite(), 2)
    with pytest.raises(ValueError):
        run_ranks(engine, comms, program)


def test_sendrecv_exchanges_simultaneously():
    def program(comm):
        peer = 1 - comm.rank
        t0 = comm.engine.now
        yield from comm.sendrecv(peer, 1 * MB, peer, 1 * MB)
        return comm.engine.now - t0

    results = timed(MpLite(), 2, program)
    lib = MpLite()
    one_way = lib.link_model(CFG).transfer_time(1 * MB + 24)
    # Full duplex: the exchange costs ~one transfer, not two.
    assert max(results) < 1.5 * one_way


# -- progress semantics -------------------------------------------------------------
def overlap_program(comm):
    compute = 20e-3
    if comm.rank == 0:
        t0 = comm.engine.now
        req = comm.isend(1, 1 * MB)
        yield from comm.compute(compute)
        yield from comm.wait(req)
        return comm.engine.now - t0
    yield from comm.recv(0, 1 * MB)
    return None


def test_progress_independent_overlaps():
    elapsed = timed(MpLite(), 2, overlap_program)[0]
    transfer = MpLite().link_model(CFG).transfer_time(1 * MB + 24)
    assert elapsed == pytest.approx(max(20e-3, transfer), rel=0.1)


def test_blocking_progress_serialises():
    elapsed = timed(Mpich.tuned(), 2, overlap_program)[0]
    transfer = Mpich.tuned().link_model(CFG).transfer_time(1 * MB)
    # Compute + transfer, not max: p4 cannot progress during compute.
    assert elapsed > 20e-3 + transfer * 0.8


def test_deferred_sends_flush_on_any_library_call():
    """Two blocking-progress ranks isend to each other, then both
    block in waitall(recvs) — must NOT deadlock, because entering
    waitall runs the progress engine."""

    def program(comm):
        peer = 1 - comm.rank
        send = comm.isend(peer, kb(256))
        recv = comm.irecv(peer, kb(256))
        yield from comm.waitall([recv])
        yield from comm.wait(send)
        return comm.engine.now

    results = timed(Mpich.tuned(), 2, program)
    assert all(r is not None for r in results)


def test_wait_is_idempotent():
    def program(comm):
        peer = 1 - comm.rank
        req = comm.isend(peer, kb(8))
        rreq = comm.irecv(peer, kb(8))
        yield from comm.wait(req)
        yield from comm.wait(req)  # second wait returns immediately
        yield from comm.wait(rreq)
        return True

    assert all(timed(MpLite(), 2, program))


def test_compute_rejects_negative():
    def program(comm):
        yield from comm.compute(-1.0)

    engine, comms = world(MpLite(), 2)
    with pytest.raises(ValueError):
        run_ranks(engine, comms, program)


def test_instrumentation_counters():
    def program(comm):
        peer = 1 - comm.rank
        yield from comm.compute(1e-3)
        yield from comm.sendrecv(peer, kb(4), peer, kb(4))
        return None

    engine, comms = world(MpLite(), 2)
    run_ranks(engine, comms, program)
    assert comms[0].bytes_sent == kb(4)
    assert comms[0].compute_time == pytest.approx(1e-3)


# -- collectives -----------------------------------------------------------------------
@pytest.mark.parametrize("nranks", [2, 3, 4, 7, 8])
def test_barrier_synchronises(nranks):
    def program(comm):
        # Stagger arrival; everyone leaves at (or after) the latest.
        yield from comm.compute(comm.rank * 1e-3)
        yield from comm.barrier()
        return comm.engine.now

    finish = timed(MpLite(), nranks, program)
    slowest_arrival = (nranks - 1) * 1e-3
    assert all(t >= slowest_arrival for t in finish)


@pytest.mark.parametrize("nranks", [2, 4, 5, 8])
def test_bcast_completes_everywhere(nranks):
    def program(comm):
        yield from comm.bcast(0, kb(64))
        return comm.engine.now

    finish = timed(MpLite(), nranks, program)
    assert all(t > 0 for t in finish)


def test_bcast_scales_logarithmically():
    def make(nranks):
        def program(comm):
            yield from comm.bcast(0, 1 * MB)
            return comm.engine.now

        return max(timed(MpLite(), nranks, program))

    t2, t8 = make(2), make(8)
    # Binomial: 8 ranks cost ~3 rounds vs 1; linear would cost 7.
    assert t8 < 4.5 * t2
    assert t8 > 1.5 * t2


@pytest.mark.parametrize("nranks", [2, 4, 8])
def test_reduce_and_allreduce(nranks):
    def program(comm):
        yield from comm.reduce(0, kb(128))
        yield from comm.allreduce(kb(128))
        return comm.engine.now

    assert all(t > 0 for t in timed(MpLite(), nranks, program))


def test_allreduce_nonpow2_falls_back():
    def program(comm):
        yield from comm.allreduce(kb(64))
        return comm.engine.now

    assert all(t > 0 for t in timed(MpLite(), 6, program))


@pytest.mark.parametrize("nranks", [2, 4, 5])
def test_allgather_ring(nranks):
    def program(comm):
        t0 = comm.engine.now
        yield from comm.allgather(kb(64))
        return comm.engine.now - t0

    times = timed(MpLite(), nranks, program)
    link = MpLite().link_model(CFG)
    # Ring: p-1 steps, full duplex: roughly (p-1) transfers.
    expected = (nranks - 1) * link.transfer_time(kb(64) + 24)
    assert max(times) == pytest.approx(expected, rel=0.35)


@pytest.mark.parametrize("nranks", [2, 4, 6, 8])
def test_alltoall_all_pairs(nranks):
    def program(comm):
        yield from comm.alltoall(kb(16))
        return comm.engine.now

    assert all(t > 0 for t in timed(MpLite(), nranks, program))


@pytest.mark.parametrize("nranks", [2, 3, 4, 5, 8])
def test_gather_scatter_block_accounting(nranks):
    """Binomial gather/scatter move every rank's block exactly once up
    (resp. down) the tree; total bytes crossing the fabric per op are
    sum over ranks of (blocks owned by subtree)."""
    from repro.collectives import gather, scatter

    def program(comm):
        yield from gather(comm, 0, kb(4))
        yield from scatter(comm, 0, kb(4))
        return comm.engine.now

    assert all(t > 0 for t in timed(RawTcp(), nranks, program))


def test_collectives_work_for_blocking_progress_library():
    def program(comm):
        yield from comm.barrier()
        yield from comm.allreduce(kb(64))
        yield from comm.alltoall(kb(16))
        return comm.engine.now

    assert all(t > 0 for t in timed(Tcgmsg(), 4, program))


def test_collective_root_validation():
    def program(comm):
        yield from comm.bcast(9, kb(1))

    engine, comms = world(MpLite(), 2)
    with pytest.raises(ValueError):
        run_ranks(engine, comms, program)


def test_mpich_collectives_cost_more_than_mplite():
    """The staging copy taxes every hop of a collective too."""

    def program(comm):
        t0 = comm.engine.now
        yield from comm.allreduce(1 * MB)
        return comm.engine.now - t0

    slow = max(timed(Mpich.tuned(), 4, program))
    fast = max(timed(MpLite(), 4, program))
    assert slow > 1.15 * fast
