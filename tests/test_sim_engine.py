"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import Engine, SimError, Interrupt


def test_time_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(2.5)
        return eng.now

    p = eng.process(proc(eng))
    eng.run()
    assert eng.now == 2.5
    assert p.value == 2.5


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    eng = Engine()
    trace = []

    def proc(eng):
        for d in (1.0, 0.5, 0.25):
            yield eng.timeout(d)
            trace.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert trace == [1.0, 1.5, 1.75]


def test_two_processes_interleave_deterministically():
    eng = Engine()
    trace = []

    def proc(eng, name, step):
        for _ in range(3):
            yield eng.timeout(step)
            trace.append((name, eng.now))

    eng.process(proc(eng, "a", 1.0))
    eng.process(proc(eng, "b", 1.5))
    eng.run()
    # At the t=3.0 tie, b's timeout was scheduled first (at t=1.5, vs a's
    # at t=2.0), so b fires first: ties break by scheduling order.
    assert trace == [
        ("a", 1.0),
        ("b", 1.5),
        ("a", 2.0),
        ("b", 3.0),
        ("a", 3.0),
        ("b", 4.5),
    ]


def test_tie_break_is_creation_order():
    eng = Engine()
    trace = []

    def proc(eng, name):
        yield eng.timeout(1.0)
        trace.append(name)

    for name in ("first", "second", "third"):
        eng.process(proc(eng, name))
    eng.run()
    assert trace == ["first", "second", "third"]


def test_process_return_value_propagates():
    eng = Engine()

    def inner(eng):
        yield eng.timeout(1.0)
        return 42

    def outer(eng):
        value = yield eng.process(inner(eng))
        return value * 2

    p = eng.process(outer(eng))
    eng.run()
    assert p.value == 84


def test_run_until_time_stops_early():
    eng = Engine()
    trace = []

    def proc(eng):
        while True:
            yield eng.timeout(1.0)
            trace.append(eng.now)

    eng.process(proc(eng))
    eng.run(until=3.5)
    assert trace == [1.0, 2.0, 3.0]
    assert eng.now == 3.5


def test_run_until_event_returns_value():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(2.0)
        return "payload"

    p = eng.process(proc(eng))
    assert eng.run(until=p) == "payload"
    assert eng.now == 2.0


def test_run_until_past_time_rejected():
    eng = Engine()
    eng.run(until=5.0)
    with pytest.raises(ValueError):
        eng.run(until=1.0)


def test_deadlock_detected_when_awaiting_unfireable_event():
    eng = Engine()

    def proc(eng):
        yield eng.event()  # never triggered

    p = eng.process(proc(eng))
    with pytest.raises(SimError, match="deadlock"):
        eng.run(until=p)


def test_exception_in_process_propagates_to_waiter():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("boom")

    def waiter(eng):
        try:
            yield eng.process(bad(eng))
        except RuntimeError as exc:
            return str(exc)

    p = eng.process(waiter(eng))
    eng.run()
    assert p.value == "boom"


def test_unhandled_exception_raises_out_of_run():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("boom")

    eng.process(bad(eng))
    with pytest.raises(RuntimeError, match="boom"):
        eng.run()


def test_yielding_non_event_is_an_error():
    eng = Engine()

    def bad(eng):
        yield 3.0  # not an Event

    eng.process(bad(eng))
    with pytest.raises(SimError, match="must yield Event"):
        eng.run()


def test_event_succeed_delivers_value():
    eng = Engine()
    ev = eng.event()

    def waiter(eng):
        value = yield ev
        return value

    def firer(eng):
        yield eng.timeout(1.0)
        ev.succeed("hello")

    p = eng.process(waiter(eng))
    eng.process(firer(eng))
    eng.run()
    assert p.value == "hello"


def test_event_cannot_trigger_twice():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event()

    def waiter(eng):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    p = eng.process(waiter(eng))
    ev.fail(ValueError("bad"))
    eng.run()
    assert p.value == "caught bad"


def test_all_of_waits_for_every_event():
    eng = Engine()

    def worker(eng, delay, value):
        yield eng.timeout(delay)
        return value

    def coordinator(eng):
        procs = [eng.process(worker(eng, d, d)) for d in (3.0, 1.0, 2.0)]
        values = yield eng.all_of(procs)
        return (eng.now, values)

    p = eng.process(coordinator(eng))
    eng.run()
    assert p.value == (3.0, (3.0, 1.0, 2.0))


def test_any_of_fires_on_first():
    eng = Engine()

    def worker(eng, delay, value):
        yield eng.timeout(delay)
        return value

    def coordinator(eng):
        procs = [eng.process(worker(eng, d, d)) for d in (3.0, 1.0, 2.0)]
        first = yield eng.any_of(procs)
        return (eng.now, first)

    p = eng.process(coordinator(eng))
    eng.run()
    assert p.value == (1.0, 1.0)


def test_interrupt_wakes_sleeping_process():
    eng = Engine()

    def sleeper(eng):
        try:
            yield eng.timeout(100.0)
            return "overslept"
        except Interrupt as i:
            return ("interrupted", eng.now, i.cause)

    def interrupter(eng, victim):
        yield eng.timeout(1.0)
        victim.interrupt("wake up")

    victim = eng.process(sleeper(eng))
    eng.process(interrupter(eng, victim))
    eng.run(until=victim)
    assert victim.value == ("interrupted", 1.0, "wake up")


def test_events_processed_counter():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        yield eng.timeout(1.0)

    eng.process(proc(eng))
    eng.run()
    assert eng.events_processed >= 3  # start kick + two timeouts


def test_peek_reports_next_event_time():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(4.0)
    # A raw timeout with no process still sits in the heap.
    assert eng.peek() == 4.0
