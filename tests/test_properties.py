"""Property-based tests (hypothesis) for core invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core import NetPipePoint, NetPipeResult, netpipe_sizes
from repro.hw.catalog import (
    COMPAQ_DS20,
    NETGEAR_GA620,
    PENTIUM4_PC,
    SYSKONNECT_SK9843,
    TRENDNET_TEG_PCITX,
)
from repro.hw.cluster import ClusterConfig, SysctlConfig
from repro.net.ethernet import EthernetFraming
from repro.net.tcp import TcpModel, TcpTuning
from repro.sim import Engine, Store
from repro.units import kb, us

NICS = [NETGEAR_GA620, TRENDNET_TEG_PCITX, SYSKONNECT_SK9843]


# -- engine properties -------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=20))
def test_engine_clock_never_goes_backwards(delays):
    eng = Engine()
    seen = []

    def proc(eng):
        for d in delays:
            yield eng.timeout(d)
            seen.append(eng.now)

    eng.process(proc(eng))
    eng.run()
    assert seen == sorted(seen)
    assert seen[-1] <= sum(delays) * (1 + 1e-9)


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
def test_store_preserves_all_items(items):
    eng = Engine()
    store = Store(eng)
    for item in items:
        store.put(item)
    got = []

    def drain(eng):
        for _ in range(len(items)):
            got.append((yield store.get()))

    eng.process(drain(eng))
    eng.run()
    assert got == list(items)


# -- size schedule properties ---------------------------------------------------------
@given(
    start=st.integers(min_value=1, max_value=64),
    stop_exp=st.integers(min_value=8, max_value=24),
    perturbation=st.integers(min_value=0, max_value=7),
)
def test_sizes_always_sorted_unique_and_bounded(start, stop_exp, perturbation):
    stop = 2**stop_exp
    sizes = netpipe_sizes(start=start, stop=stop, perturbation=perturbation)
    assert sizes == sorted(set(sizes))
    assert sizes[0] >= start and sizes[-1] <= stop
    assert start in sizes and stop in sizes


# -- framing properties ----------------------------------------------------------------
@given(
    mtu=st.integers(min_value=576, max_value=9000),
    n=st.integers(min_value=0, max_value=10_000_000),
)
def test_segment_count_covers_payload(mtu, n):
    f = EthernetFraming(mtu)
    segs = f.segments(n)
    assert segs >= 1
    assert segs * f.mss >= n
    if n > 0:
        assert (segs - 1) * f.mss < n


@given(mtu=st.integers(min_value=576, max_value=9000))
def test_payload_efficiency_in_unit_interval(mtu):
    f = EthernetFraming(mtu)
    assert 0 < f.payload_efficiency < 1


# -- TCP model properties ---------------------------------------------------------------
def tcp_models():
    return st.builds(
        lambda nic, host, buf, stall: TcpModel(
            ClusterConfig(
                host,
                nic,
                sysctl=SysctlConfig(default=kb(32), maximum=kb(1024)),
            ),
            TcpTuning(sockbuf_request=buf, progress_stall=stall),
        ),
        nic=st.sampled_from(NICS),
        host=st.sampled_from([PENTIUM4_PC, COMPAQ_DS20]),
        buf=st.one_of(st.none(), st.integers(min_value=kb(4), max_value=kb(1024))),
        stall=st.floats(min_value=0.0, max_value=us(5000)),
    )


@settings(max_examples=60)
@given(model=tcp_models(), n=st.integers(min_value=0, max_value=16 * 1024 * 1024))
def test_tcp_stream_time_nonnegative_finite(model, n):
    t = model.stream_time(n)
    assert t >= 0 and math.isfinite(t)


@settings(max_examples=60)
@given(
    model=tcp_models(),
    a=st.integers(min_value=0, max_value=8 * 1024 * 1024),
    b=st.integers(min_value=0, max_value=8 * 1024 * 1024),
)
def test_tcp_stream_time_monotone(model, a, b):
    lo, hi = sorted((a, b))
    assert model.stream_time(lo) <= model.stream_time(hi) + 1e-15


@settings(max_examples=60)
@given(model=tcp_models(), n=st.integers(min_value=1, max_value=8 * 1024 * 1024))
def test_tcp_rate_never_exceeds_pipeline(model, n):
    assert model.rate(n) <= model.pipeline_rate * (1 + 1e-9)


@settings(max_examples=40)
@given(
    model=tcp_models(),
    n=st.integers(min_value=kb(64), max_value=8 * 1024 * 1024),
)
def test_bigger_buffers_never_slower(model, n):
    """Raising the socket buffer must never reduce throughput — the
    paper's tuning advice as an invariant."""
    cfg = model.config
    small = TcpModel(cfg, TcpTuning(sockbuf_request=kb(16)))
    big = TcpModel(cfg, TcpTuning(sockbuf_request=kb(512)))
    assert big.rate(n) >= small.rate(n) * (1 - 1e-9)


@settings(max_examples=40)
@given(model=tcp_models())
def test_latency_positive(model):
    assert model.latency0 > 0


# -- result container properties -----------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10**7),
            st.floats(min_value=1e-7, max_value=1.0),
        ),
        min_size=1,
        max_size=40,
        unique_by=lambda t: t[0],
    )
)
def test_result_invariants(raw_points):
    points = [NetPipePoint(size=s, oneway_time=t) for s, t in raw_points]
    r = NetPipeResult("lib", "cfg", points)
    assert [p.size for p in r.points] == sorted(p.size for p in points)
    assert r.max_mbps >= r.plateau_mbps - 1e-12
    assert min(p.mbps for p in r.points) <= r.plateau_mbps
    for s, _ in raw_points:
        assert r.point_at(s).size == s  # exact sizes resolve exactly
    for size, depth in r.dips(min_depth=0.01):
        assert 0.01 <= depth <= 1.0
