"""Analytic-tier validation: every figure pair is engine-certified.

The closed-form tier may only answer for (library × config) pairs whose
agreement with the event engine has been measured and pinned as a
:class:`~repro.analytic.bands.ToleranceBand` in the packaged
``src/repro/analytic/bands.json``.  This module is that certification:

* every pair appearing in figures 1-5 must hold a pinned band under the
  *current* model code (the band fingerprint folds in the derived code
  salt, so any timing-model edit un-pins every band), and
* re-measuring each pair — engine as oracle, analytic as candidate —
  must stay within its pinned tolerance at every schedule size.

After an intentional model change, re-pin with:

    PYTHONPATH=src python tests/test_analytic_bands.py --regen

and review the bands.json diff alongside the golden-curve diff.  See
docs/TESTING.md.
"""

import pytest

from repro.analytic import (
    BandStore,
    band_fingerprint,
    default_band_store,
    measure_band,
    mint_bands,
    supports,
)
from repro.analytic.bands import DEFAULT_BANDS_PATH, TOLERANCE_FLOOR
from repro.experiments import ALL_FIGURES

pytestmark = pytest.mark.analytic

REGEN_HINT = (
    "If the model change is intentional, re-pin with:\n"
    "    PYTHONPATH=src python tests/test_analytic_bands.py --regen\n"
    "and include the bands.json diff in the review."
)


def figure_pairs() -> list[tuple[str, object, object]]:
    """Every unique (library, config) pair of figures 1-5.

    Deduplicated by band fingerprint: figures share entries (fig1's raw
    TCP on the GA620 is fig4's), and one band certifies the pair no
    matter how many curves draw on it.
    """
    pairs = []
    seen: set[str] = set()
    for fig in ALL_FIGURES:
        for entry in fig.entries:
            fp = band_fingerprint(entry.library, entry.config)
            if fp not in seen:
                seen.add(fp)
                pairs.append(
                    (f"{fig.id}:{entry.label}", entry.library, entry.config)
                )
    return pairs


PAIRS = figure_pairs()


def test_every_figure_pair_is_supported():
    # The analytic tier must cover the full paper surface: a figure
    # entry the closed form cannot express would silently demote every
    # tier="auto" run of that figure to simulation.
    unsupported = [name for name, lib, _ in PAIRS if not supports(lib)]
    assert not unsupported, f"no closed-form model for: {unsupported}"


def test_every_figure_pair_has_a_pinned_band():
    store = default_band_store()
    missing = [
        name
        for name, lib, cfg in PAIRS
        if store.lookup(lib, cfg) is None
    ]
    assert not missing, (
        "bands.json holds no band (under the current code salt) for:\n  "
        + "\n  ".join(missing)
        + "\n"
        + REGEN_HINT
    )


@pytest.mark.parametrize(
    "name,library,config", PAIRS, ids=[name for name, _, _ in PAIRS]
)
def test_analytic_agrees_with_engine_within_pinned_band(
    name, library, config
):
    # The acceptance check itself: engine as oracle, closed form as
    # candidate, every point of the default schedule within tolerance.
    store = default_band_store()
    pinned = store.lookup(library, config)
    if pinned is None:
        pytest.fail(f"{name} has no pinned band.\n{REGEN_HINT}")
    fresh = measure_band(library, config)
    assert fresh.max_rel_err <= pinned.rel_tol, (
        f"{name}: worst relative error {fresh.max_rel_err:.3e} exceeds the "
        f"pinned tolerance {pinned.rel_tol:.3e}.\n{REGEN_HINT}"
    )


def test_pinned_tolerances_are_tight():
    # The two tiers sum identical terms in different association
    # orders, so every band should sit at the epsilon floor.  A band
    # pinned wider means the closed form genuinely diverged when it
    # was minted — which is a model bug, not a tolerance choice.
    store = default_band_store()
    loose = {
        f"{band.library} / {band.config}": band.rel_tol
        for band in store.bands.values()
        if band.rel_tol > TOLERANCE_FLOOR
    }
    assert not loose, f"bands wider than the float-noise floor: {loose}"


def test_band_store_roundtrips(tmp_path):
    sub = BandStore(
        {
            band_fingerprint(lib, cfg): default_band_store().lookup(lib, cfg)
            for _, lib, cfg in PAIRS[:3]
        }
    )
    path = tmp_path / "bands.json"
    sub.save(path)
    again = BandStore.load(path)
    assert again.bands == sub.bands


def _regen() -> None:
    """Re-measure every figure pair and rewrite the packaged bands."""
    store = mint_bands((lib, cfg) for _, lib, cfg in PAIRS)
    store.save(DEFAULT_BANDS_PATH)
    worst = max(b.max_rel_err for b in store.bands.values())
    print(
        f"pinned {len(store)} bands into {DEFAULT_BANDS_PATH} "
        f"(worst observed rel err {worst:.3e})"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
        sys.exit(2)
