"""Chaos tier for scenarios: spec-declared faults recover bit-identically.

A scenario spec can declare its own fault windows (``[[faults]]``), and
the runner must survive them the same way the sweep executor survives
:mod:`repro.faults` plans: retry until a clean attempt, validate the
result, and land on the *exact* outcome the clean twin produces —
faults live on the harness, never inside the engine.
"""

import dataclasses

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.scenario import (
    FaultEntry,
    ScenarioExecutionError,
    ScenarioSpec,
    ScenarioStore,
    TrafficSpec,
    WorkloadSpec,
    run_scenario,
)

pytestmark = [pytest.mark.scenario, pytest.mark.faults]

SIZES = (64, 1024, 16384)


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="chaos", library="mpich", config="pc_netgear_ga620",
        workload=WorkloadSpec(sizes=SIZES),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def _clean_twin(spec: ScenarioSpec) -> ScenarioSpec:
    return dataclasses.replace(spec, faults=())


def _points(result):
    return [(p.size, p.oneway_time) for p in result.curve.points]


def test_raise_faults_recover_bit_identically():
    spec = _spec(faults=(FaultEntry(kind="raise", times=2),))
    clean, clean_report = run_scenario(_clean_twin(spec))
    faulty, report = run_scenario(spec)

    assert clean_report.attempts == 1
    assert report.attempts == 3  # two injected raises, then success
    assert faulty.completion_time == clean.completion_time
    assert _points(faulty) == _points(clean)


def test_corrupt_fault_is_caught_by_validation_and_retried():
    spec = _spec(faults=(FaultEntry(kind="corrupt", times=1),))
    clean, _ = run_scenario(_clean_twin(spec))
    faulty, report = run_scenario(spec)

    assert report.attempts == 2  # corrupt result rejected, rerun clean
    assert faulty.completion_time == clean.completion_time
    assert _points(faulty) == _points(clean)


def test_crash_fault_downgrades_to_an_exception():
    # In-process scenarios have no worker to kill: CRASH must become a
    # catchable failure that the retry loop absorbs, never os._exit.
    spec = _spec(faults=(FaultEntry(kind="crash", times=1),))
    clean, _ = run_scenario(_clean_twin(spec))
    faulty, report = run_scenario(spec)

    assert report.attempts == 2
    assert faulty.completion_time == clean.completion_time


def test_mixed_fault_stack_recovers():
    spec = _spec(faults=(
        FaultEntry(kind="raise", times=2),
        FaultEntry(kind="corrupt", times=1),
    ))
    clean, _ = run_scenario(_clean_twin(spec))
    faulty, report = run_scenario(spec)

    # Default budget covers every declared window plus slack.
    assert report.attempts == 4
    assert faulty.completion_time == clean.completion_time
    assert _points(faulty) == _points(clean)


def test_faults_on_a_noisy_scenario_leave_the_baseline_clean():
    spec = _spec(
        nranks=4,
        traffic=(TrafficSpec(kind="alltoall", rate=0.3),),
        faults=(FaultEntry(kind="raise", times=1),),
    )
    clean, _ = run_scenario(_clean_twin(spec))
    faulty, report = run_scenario(spec)

    assert report.attempts == 2
    assert faulty.completion_time == clean.completion_time
    assert faulty.quiet_completion_time == clean.quiet_completion_time
    assert faulty.slowdown == clean.slowdown


def test_exhausted_retries_raise_scenario_execution_error():
    spec = _spec(faults=(FaultEntry(kind="raise", times=3),))
    with pytest.raises(ScenarioExecutionError) as err:
        run_scenario(spec, retries=1)
    assert "chaos" in str(err.value)


def test_external_fault_plan_composes_with_the_spec():
    # An executor-style plan targeting the scenario's name merges after
    # the spec's own windows; the budget still defaults high enough.
    spec = _spec(faults=(FaultEntry(kind="raise", times=1),))
    plan = FaultPlan((FaultSpec(label="chaos", kind=FaultKind.RAISE,
                                times=1),))
    clean, _ = run_scenario(_clean_twin(spec))
    faulty, report = run_scenario(spec, fault_plan=plan, retries=4)

    assert report.attempts == 3  # spec window, then plan window, then clean
    assert faulty.completion_time == clean.completion_time


def test_recovered_result_lands_in_the_store(tmp_path):
    store = ScenarioStore(tmp_path / "store")
    spec = _spec(faults=(FaultEntry(kind="raise", times=1),))
    cold, cold_report = run_scenario(spec, cache=store)
    assert cold_report.attempts == 2

    warm, warm_report = run_scenario(spec, cache=store)
    assert warm_report.cached
    assert warm.to_jsonable() == cold.to_jsonable()
