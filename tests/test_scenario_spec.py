"""The scenario spec schema: parsing, path-addressed errors, round-trip.

The spec is the public contract of the scenario layer — TOML and JSON
files users write by hand — so errors must point at the exact field to
fix (``traffic[1].rate``), unknown fields must be rejected at every
level, and the wire form must round-trip losslessly.
"""

import json

import pytest

from repro.scenario import (
    CpuSpec,
    FaultEntry,
    ScenarioSpec,
    SpecError,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    load_spec,
    parse_spec,
    spec_to_toml,
)

pytestmark = pytest.mark.scenario


def _spec(**overrides) -> ScenarioSpec:
    base = dict(name="t", library="mpich", config="pc_netgear_ga620")
    base.update(overrides)
    return ScenarioSpec(**base)


# -- parsing and shape errors -------------------------------------------------
def test_minimal_json_parses():
    spec = parse_spec('{"name": "a", "library": "mpich"}')
    assert spec.name == "a"
    assert spec.nranks == 2
    assert spec.config == "pc_netgear_ga620"
    assert spec.is_quiet() and spec.is_two_node_baseline()


def test_minimal_toml_parses():
    spec = parse_spec('name = "a"\nlibrary = "mpich"\n', fmt="toml")
    assert spec.name == "a"


def test_json_syntax_error_carries_source():
    with pytest.raises(SpecError) as err:
        parse_spec("{not json", source="bad.json")
    assert err.value.path == "bad.json"


def test_unknown_format_rejected():
    with pytest.raises(SpecError, match="unknown spec format"):
        parse_spec("{}", fmt="yaml")


def test_unknown_top_level_field_named():
    with pytest.raises(SpecError) as err:
        parse_spec('{"name": "a", "library": "mpich", "nodez": 4}')
    assert err.value.path == "nodez"


def test_nested_error_paths():
    cases = [
        ({"traffic": [{"kind": "constant"}, {"kind": "constant",
                      "rate": 2.0}]}, "traffic[1].rate"),
        ({"traffic": [{"kind": "nope"}]}, "traffic[0].kind"),
        ({"workload": {"kind": "pingpong", "ranks": [0]}},
         "workload.ranks"),
        ({"workload": {"repeats": 0}}, "workload.repeats"),
        ({"topology": {"kind": "fat-tree"}}, "topology.kind"),
        ({"cpu": {"load": 1.5}}, "cpu.load"),
        ({"faults": [{"kind": "hang"}]}, "faults[0].kind"),
        ({"nranks": 1}, "nranks"),
        ({"workload": {"ranks": [0, 9]}, "nranks": 4},
         "workload.ranks[1]"),
    ]
    for extra, path in cases:
        data = {"name": "a", "library": "mpich", **extra}
        with pytest.raises(SpecError) as err:
            ScenarioSpec.from_jsonable(data)
        assert err.value.path == path, (extra, err.value.path)


def test_unknown_library_and_config_rejected():
    with pytest.raises(SpecError) as err:
        parse_spec('{"name": "a", "library": "openmpi"}')
    assert err.value.path == "library"
    with pytest.raises(SpecError) as err:
        parse_spec('{"name": "a", "library": "mpich", "config": "cray"}')
    assert err.value.path == "config"


def test_bool_is_not_an_integer():
    with pytest.raises(SpecError) as err:
        parse_spec('{"name": "a", "library": "mpich", "nranks": true}')
    assert err.value.path == "nranks"


def test_alltoall_traffic_needs_two_participants():
    with pytest.raises(SpecError) as err:
        ScenarioSpec.from_jsonable({
            "name": "a", "library": "mpich", "nranks": 4,
            "traffic": [{"kind": "alltoall", "ranks": [2]}],
        })
    assert err.value.path == "traffic[0].ranks"


def test_spec_error_message_shape():
    err = SpecError("traffic[1].rate", "must be in (0, 1]")
    assert str(err) == "traffic[1].rate: must be in (0, 1]"
    assert err.path == "traffic[1].rate"


# -- derived views ------------------------------------------------------------
def test_quiet_twin_strips_interference_and_faults():
    spec = _spec(
        traffic=(TrafficSpec(),), cpu=CpuSpec(),
        faults=(FaultEntry(),),
    )
    assert not spec.is_quiet()
    twin = spec.quiet()
    assert twin.is_quiet() and not twin.faults
    assert twin.workload == spec.workload
    assert twin.fingerprint() != spec.fingerprint()


def test_faults_do_not_change_quietness():
    # Faults act on the harness, not the engine: a faulted 2-rank spec
    # must still take the exact two-node baseline path.
    spec = _spec(faults=(FaultEntry(kind="raise"),))
    assert spec.is_quiet()
    assert spec.is_two_node_baseline()


def test_two_node_baseline_detection():
    assert _spec().is_two_node_baseline()
    assert _spec(workload=WorkloadSpec(ranks=(0, 1))).is_two_node_baseline()
    assert not _spec(nranks=4).is_two_node_baseline()
    assert not _spec(traffic=(TrafficSpec(),)).is_two_node_baseline()
    assert not _spec(
        topology=TopologySpec(kind="two-tier")
    ).is_two_node_baseline()
    assert not _spec(
        workload=WorkloadSpec(kind="halo")
    ).is_two_node_baseline()


def test_cpu_dilation():
    assert CpuSpec(load=0.5).dilation() == pytest.approx(2.0)
    assert CpuSpec(load=0.75).dilation() == pytest.approx(4.0)


# -- round-trips --------------------------------------------------------------
FULL = ScenarioSpec(
    name="full",
    library="mpich",
    config="ds20_syskonnect_jumbo",
    description="everything at once",
    nranks=16,
    mtu=9000,
    tuned=True,
    seed=9,
    topology=TopologySpec(kind="two-tier", leaf_size=4,
                          uplink_capacity=2, uplink_latency=2e-6),
    workload=WorkloadSpec(kind="pingpong", ranks=(0, 15),
                          sizes=(64, 1024), repeats=2),
    traffic=(
        TrafficSpec(kind="alltoall", rate=0.3),
        TrafficSpec(kind="onoff", rate=0.2, ranks=(1, 2),
                    on_seconds=0.001, off_seconds=0.003),
    ),
    cpu=CpuSpec(load=0.25, ranks=(0,)),
    faults=(FaultEntry(kind="raise", times=2),),
)


def test_json_round_trip_lossless():
    data = json.loads(json.dumps(FULL.to_jsonable()))
    assert ScenarioSpec.from_jsonable(data) == FULL


def test_toml_round_trip_lossless():
    assert parse_spec(spec_to_toml(FULL), fmt="toml") == FULL


def test_load_spec_by_extension(tmp_path):
    toml_path = tmp_path / "s.toml"
    toml_path.write_text(spec_to_toml(FULL))
    json_path = tmp_path / "s.json"
    json_path.write_text(json.dumps(FULL.to_jsonable()))
    assert load_spec(toml_path) == FULL == load_spec(json_path)

    with pytest.raises(SpecError, match="extension"):
        load_spec(tmp_path / "s.yaml")
    with pytest.raises(SpecError, match="cannot read"):
        load_spec(tmp_path / "missing.json")
