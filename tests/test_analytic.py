"""Closed-form model tests: the analytic tier against the event engine.

The derivation in :mod:`repro.analytic.model` claims the two tiers sum
the *same* cost terms, so they may only disagree through float
association order.  These tests hold it to that claim pointwise —
including the protocol-boundary sizes (eager/rendezvous thresholds
±1) where an off-by-one in the closed form would hide from any
smooth-curve comparison — across every library family of figures 1-5.
"""

import numpy as np
import pytest

from repro.analytic import AnalyticUnsupported, predict_oneway_times, predict_sweep, supports
from repro.core.pingpong import measure_sweep
from repro.core.sizes import netpipe_sizes
from repro.experiments import ALL_FIGURES
from repro.experiments.configs import pc_netgear_ga620
from repro.mplib.base import MPLibrary
from repro.mplib.registry import RawTcp
from repro.sim import Engine

pytestmark = pytest.mark.analytic

#: Boundary-rich size schedule: tiny sizes, the common eager/rendezvous
#: thresholds (16 KB, 128 KB) straddled by one byte, a fragment-size
#: boundary, and the paper's largest messages.
BOUNDARY_SIZES = (
    1, 2, 3, 7, 1024, 4095, 4096, 4097,
    16383, 16384, 16385, 131071, 131072, 131073,
    1 << 20, 8 << 20,
)

#: Every unique figure pair (dedup by object identity is enough here —
#: figure definitions share the actual spec instances).
PAIRS = []
_seen = set()
for _fig in ALL_FIGURES:
    for _entry in _fig.entries:
        key = (id(_entry.library), id(_entry.config))
        if key not in _seen:
            _seen.add(key)
            PAIRS.append((f"{_fig.id}:{_entry.label}", _entry.library, _entry.config))


@pytest.mark.parametrize(
    "name,library,config", PAIRS, ids=[name for name, _, _ in PAIRS]
)
def test_matches_engine_at_protocol_boundaries(name, library, config):
    engine = Engine()
    a, b = library.build(engine, config)
    simulated = measure_sweep(engine, a, b, BOUNDARY_SIZES)
    predicted = predict_oneway_times(library, config, BOUNDARY_SIZES)
    for (size, t_sim), t_ana in zip(simulated, predicted):
        assert t_ana == pytest.approx(t_sim, rel=1e-12), (
            f"{name}: analytic {t_ana!r} vs engine {t_sim!r} at size {size}"
        )


def test_supports_covers_exactly_the_derived_families():
    assert all(supports(lib) for _, lib, _ in PAIRS)

    class Homegrown(MPLibrary):  # no closed form derived for this
        display_name = "homegrown"

        def build(self, engine, config):  # pragma: no cover - never built
            raise NotImplementedError

        def link_model(self, config):  # pragma: no cover - never built
            raise NotImplementedError

    assert not supports(Homegrown())
    with pytest.raises(AnalyticUnsupported, match="homegrown"):
        predict_oneway_times(Homegrown(), pc_netgear_ga620(), [1, 2])


def test_vectorized_batch_equals_single_size_calls():
    lib, cfg = RawTcp(), pc_netgear_ga620()
    sizes = list(BOUNDARY_SIZES)
    batch = predict_oneway_times(lib, cfg, sizes)
    singles = [float(predict_oneway_times(lib, cfg, [s])[0]) for s in sizes]
    assert batch.tolist() == singles


def test_predict_sweep_is_result_shaped():
    lib, cfg = RawTcp(), pc_netgear_ga620()
    result = predict_sweep(lib, cfg)
    schedule = netpipe_sizes()
    assert result.library == lib.display_name
    assert result.config == cfg.describe()
    assert [p.size for p in result.points] == schedule
    assert all(isinstance(p.size, int) for p in result.points)
    assert all(
        isinstance(p.oneway_time, float) and p.oneway_time > 0
        for p in result.points
    )


def test_predict_sweep_repeats_parity():
    # Ping-pong rounds on an idle simulated channel are identical, so
    # the mean over repeats equals the single-round time — repeats is
    # accepted purely for request parity and must not move the curve.
    lib, cfg = RawTcp(), pc_netgear_ga620()
    once = predict_sweep(lib, cfg, sizes=[1, 1024], repeats=1)
    thrice = predict_sweep(lib, cfg, sizes=[1, 1024], repeats=3)
    assert [p.oneway_time for p in once.points] == [
        p.oneway_time for p in thrice.points
    ]
    with pytest.raises(ValueError, match="repeats"):
        predict_sweep(lib, cfg, repeats=0)


def test_size_validation():
    lib, cfg = RawTcp(), pc_netgear_ga620()
    with pytest.raises(ValueError, match="non-negative"):
        predict_oneway_times(lib, cfg, [1, -2])
    with pytest.raises(ValueError, match="flat"):
        predict_oneway_times(lib, cfg, [[1, 2]])
    assert predict_oneway_times(lib, cfg, []).shape == (0,)


def test_predictions_are_monotone_enough():
    # Sanity on curve shape: strictly positive and (for the stream-rate
    # models) non-decreasing over doubling sizes — a sign error in a
    # cost term would break this long before any band check runs.
    doubling = [1 << k for k in range(24)]
    for name, lib, cfg in PAIRS:
        t = predict_oneway_times(lib, cfg, doubling)
        assert np.all(t > 0), name
        assert np.all(np.diff(t) >= 0), name
