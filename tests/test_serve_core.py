"""Serve tier: coalescing, cache tiers, admission, speculation, stats.

The deterministic load tests for :mod:`repro.serve`.  The headline
guarantee: a thundering herd of concurrent identical queries performs
exactly ONE simulation — asserted from the executor counters, not
timing — and every caller receives a curve bit-identical to a direct
:func:`~repro.exec.execute_sweeps` call.
"""

import asyncio
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec import ExecPolicy, SweepCache, execute_sweeps
from repro.serve import (
    BadRequestError,
    HotCurveLRU,
    OverloadedError,
    ServeCore,
    ServeQuery,
    ServeResponse,
    neighbor_queries,
)

pytestmark = pytest.mark.serve

#: Tiny schedule: these tests are about the serving pipeline, not curves.
SIZES = (1, 64, 1024)


def _policy(**kw):
    """A hermetic policy: no environment reads, tiny retry backoff."""
    kw.setdefault("max_workers", 1)
    kw.setdefault("backoff", 0.001)
    return ExecPolicy(**kw)


def _core(tmp_path=None, **kw):
    """A ServeCore with an explicit policy and optional tmp disk cache."""
    kw.setdefault("policy", _policy())
    cache = SweepCache(tmp_path / "cache") if tmp_path is not None else None
    return ServeCore(cache=cache, **kw)


def _points(result):
    return [(p.size, p.oneway_time) for p in result.points]


# -- the acceptance guarantee ------------------------------------------------

def test_thundering_herd_performs_exactly_one_simulation(tmp_path):
    """64 concurrent identical uncached queries; one sweep; 64 identical
    answers, bit-identical to a direct execute_sweeps call."""
    query = ServeQuery(library="mpich", sizes=SIZES)

    async def herd():
        core = _core(tmp_path, hot_size=16, max_pending=4)
        responses = await asyncio.gather(
            *[core.query(query) for _ in range(64)]
        )
        stats = core.stats()
        await core.aclose()
        return responses, stats

    responses, stats = asyncio.run(herd())
    assert len(responses) == 64

    # Exactly one simulation, proven by the executor's own counters.
    assert stats["exec"]["simulated"] == 1
    assert stats["sources"]["computed"] == 1
    assert stats["sources"]["coalesced"] == 63
    assert stats["requests"] == 64
    assert stats["shed"] == 0

    # Every response carries the identical curve...
    direct, report = execute_sweeps([query.resolve()])
    assert report.sweeps_simulated == 1
    expected = _points(direct[0])
    for response in responses:
        assert _points(response.result) == expected  # bit-identical
        assert response.fingerprint == responses[0].fingerprint
        assert response.source in ("computed", "coalesced")

    # ...and the JSON wire form round-trips it exactly.
    wire = ServeResponse.from_jsonable(
        json.loads(json.dumps(responses[0].to_jsonable()))
    )
    assert _points(wire.result) == expected


@settings(deadline=None, max_examples=8)
@given(n=st.integers(min_value=2, max_value=12))
def test_coalescing_property_any_herd_size(n):
    """Property: N concurrent identical queries, any N, coalesce to one
    computation with identical responses (no disk cache involved)."""
    query = ServeQuery(library="raw-tcp", sizes=(1, 256))

    async def herd():
        core = _core(hot_size=0)  # hot tier off: pure coalescing
        responses = await asyncio.gather(
            *[core.query(query) for _ in range(n)]
        )
        stats = core.stats()
        await core.aclose()
        return responses, stats

    responses, stats = asyncio.run(herd())
    assert stats["exec"]["simulated"] == 1
    assert stats["sources"]["computed"] == 1
    assert stats["sources"]["coalesced"] == n - 1
    first = _points(responses[0].result)
    assert all(_points(r.result) == first for r in responses)


# -- distinct-fingerprint herd: shards, LRU order ---------------------------

def test_distinct_herd_spreads_shards_and_evicts_in_lru_order(tmp_path):
    """Distinct fingerprints fan out across cache shards; the hot tier
    evicts in exact least-recently-used order."""
    hot_size = 4
    queries = [
        ServeQuery(library="raw-tcp", sizes=(1, 1 << (i + 2)))
        for i in range(12)
    ]

    async def run():
        core = _core(tmp_path, hot_size=hot_size, max_pending=4)
        responses = [await core.query(q) for q in queries]
        stats = core.stats()
        await core.aclose()
        return core, responses, stats

    core, responses, stats = asyncio.run(run())
    fingerprints = [r.fingerprint for r in responses]
    assert len(set(fingerprints)) == len(queries)  # genuinely distinct

    # Disk tier: every entry landed, sharded by fingerprint first byte.
    shards = core.cache.shard_counts()
    assert sum(shards.values()) == len(queries)
    assert "" not in shards  # nothing in the flat legacy layout
    assert len(shards) >= 2  # spread, not one directory
    for shard, fp in zip(
        (f[:2] for f in fingerprints), fingerprints
    ):
        assert core.cache.path_for(fp).exists()
        assert core.cache.path_for(fp).parent.name == shard

    # Hot tier: sequential queries evict strictly oldest-first.
    assert stats["hot"]["size"] == hot_size
    assert stats["hot"]["evictions"] == len(queries) - hot_size
    assert core.hot.recent_evictions() == fingerprints[: len(queries) - hot_size]
    assert list(core.hot) == fingerprints[len(queries) - hot_size:]


def test_warm_tiers_answer_without_simulation(tmp_path):
    """Second ask is a hot hit; a fresh core over the same disk cache
    answers from disk; neither re-simulates."""
    query = ServeQuery(library="mplite", sizes=SIZES)

    async def run():
        core = _core(tmp_path)
        first = await core.query(query)
        again = await core.query(query)
        await core.aclose()
        # Fresh core, hot tier empty, same disk cache directory.
        cold = _core(tmp_path)
        from_disk = await cold.query(query)
        stats = cold.stats()
        await cold.aclose()
        return first, again, from_disk, stats

    first, again, from_disk, cold_stats = asyncio.run(run())
    assert first.source == "computed"
    assert again.source == "hot"
    assert from_disk.source == "disk"
    assert cold_stats["exec"]["simulated"] == 0
    assert _points(first.result) == _points(again.result)
    assert _points(first.result) == _points(from_disk.result)


# -- admission / load shed ---------------------------------------------------

def test_load_shed_raises_typed_overloaded_error(monkeypatch):
    """Past max_pending the core sheds with the typed error shape; an
    identical-fingerprint follower still coalesces (never shed)."""
    q_busy = ServeQuery(library="mpich", sizes=(1, 32))
    q_other = ServeQuery(library="raw-tcp", sizes=(1, 32))

    async def run():
        core = _core(max_pending=1)
        started = threading.Event()
        release = threading.Event()
        real_compute = core._compute

        def slow_compute(sweep, policy):
            started.set()
            assert release.wait(10)
            return real_compute(sweep, policy)

        monkeypatch.setattr(core, "_compute", slow_compute)
        leader = asyncio.create_task(core.query(q_busy))
        await asyncio.to_thread(started.wait, 10)

        with pytest.raises(OverloadedError) as excinfo:
            await core.query(q_other)
        shed_error = excinfo.value

        follower = asyncio.create_task(core.query(q_busy))
        await asyncio.sleep(0)  # let the follower join the future
        release.set()
        leader_response = await leader
        follower_response = await follower
        stats = core.stats()
        await core.aclose()
        return shed_error, leader_response, follower_response, stats

    shed, leader, follower, stats = asyncio.run(run())
    assert shed.kind == "overloaded"
    assert shed.pending == 1 and shed.limit == 1
    wire = shed.to_jsonable()
    assert wire["kind"] == "overloaded"
    assert wire["pending"] == 1 and wire["limit"] == 1
    assert "retry" in wire["detail"]
    assert leader.source == "computed"
    assert follower.source in ("coalesced", "hot")
    assert stats["shed"] == 1
    assert _points(leader.result) == _points(follower.result)


# -- tier routing through the service ---------------------------------------

def test_analytic_tier_routes_and_demands(tmp_path):
    """tier='analytic' answers banded pairs closed-form and rejects
    unbanded ones as a bad request, not an execution failure."""
    async def run():
        core = _core(tmp_path)
        response = await core.query(
            ServeQuery(library="mpich", sizes=SIZES, tier="analytic")
        )
        with pytest.raises(BadRequestError, match="analytic"):
            await core.query(
                ServeQuery(library="mpich-mplite", sizes=SIZES,
                           tier="analytic")
            )
        stats = core.stats()
        await core.aclose()
        return response, stats

    response, stats = asyncio.run(run())
    assert response.tier == "analytic"
    assert response.source == "computed"
    assert stats["exec"]["analytic"] == 1
    assert stats["exec"]["simulated"] == 0


def test_bad_tier_name_is_bad_request():
    """An invalid per-query tier is the query's fault, typed as such."""
    async def run():
        core = _core()
        with pytest.raises(BadRequestError, match="tier"):
            await core.query(
                ServeQuery(library="mpich", sizes=SIZES, tier="warp")
            )
        await core.aclose()

    asyncio.run(run())


# -- query validation and derived blocks ------------------------------------

def test_bad_names_are_typed_bad_requests():
    """Unknown library/config names and invalid tunables reject cleanly."""
    async def run():
        core = _core()
        with pytest.raises(BadRequestError, match="unknown library"):
            await core.query(ServeQuery(library="openmpi", sizes=SIZES))
        with pytest.raises(BadRequestError, match="unknown config"):
            await core.query(
                ServeQuery(library="mpich", config="beowulf99", sizes=SIZES)
            )
        with pytest.raises(BadRequestError, match="[Mm]tu|MTU"):
            await core.query(
                ServeQuery(library="mpich", mtu=64000, sizes=SIZES)
            )
        await core.aclose()

    asyncio.run(run())


def test_query_jsonable_round_trip_and_unknown_fields():
    """The wire form round-trips; unknown fields are rejected loudly."""
    query = ServeQuery(
        library="mpich", config="pc_syskonnect", mtu=9000, tuned=True,
        sizes=(1, 64), repeats=2, tier="auto", compare_with="raw-tcp",
        nodes=16,
    )
    assert ServeQuery.from_jsonable(
        json.loads(json.dumps(query.to_jsonable()))
    ) == query
    with pytest.raises(BadRequestError, match="unknown query field"):
        ServeQuery.from_jsonable({"library": "mpich", "jumbo": True})
    with pytest.raises(BadRequestError, match="library"):
        ServeQuery.from_jsonable({"config": "pc_syskonnect"})
    with pytest.raises(BadRequestError, match="sizes"):
        ServeQuery(library="mpich", sizes=())
    with pytest.raises(BadRequestError, match="repeats"):
        ServeQuery(library="mpich", repeats=0)


def test_schedule_without_latency_point_answers_with_null_latency():
    """A sizes schedule with no sub-64-byte point must still answer —
    latency_us comes back null, never a dropped connection."""
    core = _core()
    response = asyncio.run(
        core.query(ServeQuery(library="mpich", sizes=(64, 1024)))
    )
    assert response.metrics["latency_us"] is None
    assert response.metrics["max_mbps"] > 0


def test_crossover_and_cost_blocks(tmp_path):
    """compare_with yields the crossover block; every response carries
    the paper-priced cost block for the requested node count."""
    async def run():
        core = _core(tmp_path)
        response = await core.query(
            ServeQuery(library="mpich", sizes=SIZES,
                       compare_with="raw-tcp", nodes=8)
        )
        stats = core.stats()
        await core.aclose()
        return response, stats

    response, stats = asyncio.run(run())
    assert stats["exec"]["simulated"] == 2  # the query and its companion
    assert response.crossover["versus"] == "raw-tcp"
    assert response.crossover["versus_max_mbps"] > 0
    # Raw TCP beats MPICH from the smallest measured size on this NIC.
    assert response.crossover["overtaken_at"] == SIZES[0]
    assert response.cost["nodes"] == 8
    assert response.cost["total_usd"] > response.cost["interconnect_usd"] > 0
    assert response.cost["mbps_per_interconnect_kusd"] > 0
    assert response.metrics["max_mbps"] > 0
    assert response.metrics["latency_us"] > 0


# -- speculation -------------------------------------------------------------

def test_neighbor_queries_are_deterministic_and_bounded():
    """Neighbors: tuned toggle first, then supported MTU ladder steps;
    never the current MTU, never past the NIC maximum, depth-bounded."""
    query = ServeQuery(library="mpich", config="pc_netgear_ga620",
                       sizes=SIZES)
    neighbors = neighbor_queries(query, depth=8)
    assert neighbors == neighbor_queries(query, depth=8)  # deterministic
    assert neighbors[0].tuned is True  # untuned default toggles on
    mtus = [n.mtu for n in neighbors if n.mtu is not None]
    assert 1500 not in mtus  # already the configured MTU
    assert neighbor_queries(query, depth=1) == neighbors[:1]
    # Unresolvable queries must produce no neighbors (never an error).
    assert neighbor_queries(
        ServeQuery(library="mpich", config="nope"), depth=3
    ) == []


def test_speculation_warms_neighbors(tmp_path):
    """A computed answer precomputes its neighbors in the background,
    so the follow-up tuned question is a hot hit."""
    query = ServeQuery(library="mpich", sizes=SIZES)

    async def run():
        core = _core(tmp_path, speculate=True, speculate_depth=2,
                     max_pending=2)
        await core.query(query)
        await core.drain_speculation()
        follow_up = await core.query(query.replace_tunables(tuned=True))
        stats = core.stats()
        await core.aclose()
        return follow_up, stats

    follow_up, stats = asyncio.run(run())
    assert stats["speculation"]["enqueued"] >= 2
    assert stats["speculation"]["warmed"] >= 2
    assert follow_up.source == "hot"


# -- hot LRU unit behaviour --------------------------------------------------

def test_hot_lru_counters_and_order():
    """Hits refresh recency; eviction is LRU; counters add up."""
    lru = HotCurveLRU(2)
    assert lru.get("a") is None and lru.misses == 1
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes a over b
    lru.put("c", 3)  # evicts b, the LRU entry
    assert "b" not in lru and "a" in lru and "c" in lru
    assert lru.recent_evictions() == ["b"]
    assert list(lru) == ["a", "c"]
    assert (lru.hits, lru.misses, lru.evictions) == (1, 1, 1)
    snap = lru.snapshot()
    assert snap == {"capacity": 2, "size": 2, "hits": 1, "misses": 1,
                    "evictions": 1}


def test_hot_lru_capacity_zero_disables():
    """Capacity 0 turns the hot tier off without special-casing callers."""
    lru = HotCurveLRU(0)
    lru.put("a", 1)
    assert lru.get("a") is None
    assert len(lru) == 0 and lru.evictions == 0
    with pytest.raises(ValueError):
        HotCurveLRU(-1)


# -- stats document ----------------------------------------------------------

def test_stats_document_shape_and_serializability(tmp_path):
    """The stats document is one JSON-ready object with every section."""
    async def run():
        core = _core(tmp_path, hot_size=8)
        await core.query(ServeQuery(library="raw-tcp", sizes=SIZES))
        stats = core.stats()
        await core.aclose()
        return stats

    stats = asyncio.run(run())
    assert json.loads(json.dumps(stats)) == stats
    for section in ("requests", "sources", "shed", "hot", "disk", "exec",
                    "speculation", "policy", "max_pending"):
        assert section in stats
    assert stats["disk"]["shards"]  # the sharded layout is visible
    assert stats["policy"]["tier"] == "sim"
