"""Unit tests of the interprocedural layer itself.

The rule-family tests prove the async-*/fp-* verdicts; these prove the
machinery under them: call-graph resolution across packages, the
per-function summaries, the path-sensitive race walk's exemptions, and
the content-digest summary cache (a single-file edit re-summarizes
exactly that file).
"""

from pathlib import Path

import pytest

from repro.check import Project
from repro.check.dataflow import (
    Dataflow,
    FunctionSummary,
    SummaryCache,
    summarize_module,
)
from repro.check.project import AstCache
from repro.check.rules.asyncsafety import is_blocking_primitive

pytestmark = pytest.mark.check


def _flow(source, module="repro.serve.fixture_flow"):
    project = Project.from_source(source, module=module, derive=False)
    return project.dataflow()


def _summary(source, qualname, module="repro.serve.fixture_flow"):
    flow = _flow(source, module=module)
    return flow.functions[(module, qualname)]


# -- call graph across packages -----------------------------------------------

def _write_tree(root: Path) -> Path:
    pkg = root / "repro"
    (pkg / "gamma").mkdir(parents=True)
    (pkg / "alpha.py").write_text(
        "import time\n"
        "def helper():\n"
        "    time.sleep(1)\n"
    )
    (pkg / "beta.py").write_text(
        "from repro.alpha import helper\n"
        "async def go():\n"
        "    helper()\n"
    )
    (pkg / "gamma" / "__init__.py").write_text("")
    (pkg / "gamma" / "deep.py").write_text(
        "from repro.beta import go\n"
        "class Runner:\n"
        "    def kick(self):\n"
        "        return self.prep()\n"
        "    def prep(self):\n"
        "        return go\n"
    )
    return root


def test_call_graph_resolves_across_packages(tmp_path):
    project = Project.from_paths([_write_tree(tmp_path)])
    flow = project.dataflow()

    go = flow.functions[("repro.beta", "go")]
    # The import map canonicalizes the bare call to its home module...
    assert [c[0] for c in go.calls] == ["repro.alpha.helper"]
    # ...and resolution lands on the actual summary in that module.
    callee = flow.resolve_call("repro.beta", go, "repro.alpha.helper")
    assert callee is not None
    assert (callee.module, callee.qualname) == ("repro.alpha", "helper")

    # self.method() resolves within the class, one package deeper.
    kick = flow.functions[("repro.gamma.deep", "Runner.kick")]
    prep = flow.resolve_call("repro.gamma.deep", kick, "self.prep")
    assert prep is not None and prep.qualname == "Runner.prep"


def test_transitive_blocking_closure(tmp_path):
    project = Project.from_paths([_write_tree(tmp_path)])
    flow = project.dataflow()
    helper = flow.functions[("repro.alpha", "helper")]
    hit = flow.first_blocking("repro.alpha", helper, is_blocking_primitive)
    assert hit == ("helper", "time.sleep")
    # A function with no blocking reach resolves to None (memoized).
    prep = flow.functions[("repro.gamma.deep", "Runner.prep")]
    assert (
        flow.first_blocking("repro.gamma.deep", prep, is_blocking_primitive)
        is None
    )


def test_unresolvable_calls_are_skipped_not_guessed():
    flow = _flow(
        "async def go(conn):\n"
        "    conn.send(1)\n"
        "    helper_nowhere()\n"
    )
    go = flow.functions[("repro.serve.fixture_flow", "go")]
    assert flow.resolve_call(
        "repro.serve.fixture_flow", go, "conn.send"
    ) is None
    assert flow.resolve_call(
        "repro.serve.fixture_flow", go, "helper_nowhere"
    ) is None


# -- summary contents ---------------------------------------------------------

def test_summary_records_awaits_writes_and_env():
    s = _summary(
        "import os\n"
        "class C:\n"
        "    async def m(self, q):\n"
        "        self.n = os.environ.get('X')\n"
        "        await q.get()\n",
        "C.m",
    )
    assert s.is_async and s.cls == "C"
    assert s.params == ("self", "q")
    assert s.awaits == (5,)
    assert ("n", 4) in s.attr_writes
    assert any(name.startswith("os.environ") for name, _, _ in s.env_reads)


def test_race_walk_flags_stale_read_modify_write():
    s = _summary(
        "class C:\n"
        "    async def bump(self):\n"
        "        seen = self.total\n"
        "        await self.pause()\n"
        "        self.total = seen + 1\n"
        "    async def pause(self):\n"
        "        pass\n",
        "C.bump",
    )
    assert len(s.races) == 1
    race = s.races[0]
    assert (race.attr, race.read_line, race.await_line, race.write_line) == (
        "total", 3, 4, 5
    )


def test_race_walk_exempts_return_paths_and_constant_writes():
    # The serve-core idioms: the probe branch returns before the
    # leader's write, and cleanup resets an awaited attribute to None.
    s = _summary(
        "class C:\n"
        "    async def answer(self, key, fut):\n"
        "        waiter = self.inflight.get(key)\n"
        "        if waiter is not None:\n"
        "            return await waiter\n"
        "        self.inflight[key] = fut\n"
        "    async def aclose(self):\n"
        "        if self.task is not None:\n"
        "            await self.task\n"
        "            self.task = None\n",
        "C.answer",
    )
    assert s.races == ()
    s2 = _summary(
        "class C:\n"
        "    async def aclose(self):\n"
        "        if self.task is not None:\n"
        "            await self.task\n"
        "            self.task = None\n",
        "C.aclose",
    )
    assert s2.races == ()


def test_cache_put_slices_track_key_value_and_control_roots():
    s = _summary(
        "def fp(config):\n"
        "    return ('v1', config)\n"
        "def warm(cache, config, tuning, mode):\n"
        "    value = (config, tuning)\n"
        "    if mode:\n"
        "        cache.put(fp(config), value)\n",
        "warm",
        module="repro.exec.fixture_flow",
    )
    (put,) = s.cache_puts
    assert put.recv == "cache" and put.method == "put"
    assert put.key_roots == ("config",)
    assert set(put.value_roots) == {"config", "tuning"}
    assert put.control_roots == ("mode",)


# -- summary cache ------------------------------------------------------------

def test_single_file_edit_resummarizes_only_that_module(tmp_path):
    src = _write_tree(tmp_path / "t")
    cache = AstCache(tmp_path / "cache")

    p1 = Project.from_paths([src], cache=cache)
    p1.dataflow()
    assert p1.stats.summaries_computed == p1.stats.files
    assert p1.stats.summaries_reused == 0

    p2 = Project.from_paths([src], cache=cache)
    p2.dataflow()
    assert p2.stats.summaries_computed == 0
    assert p2.stats.summaries_reused == p2.stats.files
    assert p2.changed_paths == set()

    edited = src / "repro" / "alpha.py"
    edited.write_text(edited.read_text() + "\n# touched\n")
    p3 = Project.from_paths([src], cache=cache)
    p3.dataflow()
    assert p3.changed_paths == {str(edited)}
    assert p3.stats.summaries_computed == 1
    assert p3.stats.summaries_reused == p3.stats.files - 1


def test_summary_cache_round_trips_and_rejects_corrupt(tmp_path):
    project = Project.from_source(
        "async def go(q):\n    await q.get()\n",
        module="repro.serve.fixture_flow",
        derive=False,
    )
    ctx = project.modules[0]
    summaries = summarize_module(ctx, project.imports_of(ctx))
    cache = SummaryCache(tmp_path)
    cache.put("ab" * 32, summaries)
    loaded = cache.get("ab" * 32)
    assert loaded == summaries
    assert all(isinstance(s, FunctionSummary) for s in loaded)
    # Corruption is a miss, never an error.
    entry = cache._entry("ab" * 32)
    entry.write_text("{not json")
    assert cache.get("ab" * 32) is None
    assert cache.get("cd" * 32) is None


def test_dataflow_is_memoized_per_project():
    project = Project.from_source(
        "def f():\n    return 1\n", module="repro.exec.x", derive=False
    )
    assert project.dataflow() is project.dataflow()
    assert isinstance(project.dataflow(), Dataflow)
