"""SimChannel: DES execution must agree with the analytic LinkModel."""

import pytest

from repro.hw.catalog import NETGEAR_GA620, PENTIUM4_PC
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.net.channel import SimChannel
from repro.net.tcp import TcpModel, TcpTuning
from repro.sim import Engine
from repro.units import MB, kb


@pytest.fixture()
def channel():
    engine = Engine()
    cfg = ClusterConfig(PENTIUM4_PC, NETGEAR_GA620, sysctl=TUNED_SYSCTL)
    link = TcpModel(cfg, TcpTuning(sockbuf_request=kb(512)))
    return engine, SimChannel(engine, link), link


def test_one_transfer_takes_transfer_time(channel):
    engine, ch, link = channel
    a, b = ch.endpoints
    size = 1 * MB
    got = {}

    def sender():
        yield from a.send(size)

    def receiver():
        msg = yield from b.recv()
        got["at"] = engine.now
        got["msg"] = msg

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert got["at"] == pytest.approx(link.transfer_time(size))
    assert got["msg"].size == size


def test_sender_unblocks_at_occupancy(channel):
    engine, ch, link = channel
    a, _ = ch.endpoints
    size = 1 * MB
    done = {}

    def sender():
        yield from a.send(size)
        done["at"] = engine.now

    engine.process(sender())
    engine.run()
    assert done["at"] == pytest.approx(link.occupancy(size))


def test_back_to_back_sends_serialise(channel):
    engine, ch, link = channel
    a, b = ch.endpoints
    size = 512 * 1024
    arrivals = []

    def sender():
        yield from a.send(size)
        yield from a.send(size)

    def receiver():
        for _ in range(2):
            yield from b.recv()
            arrivals.append(engine.now)

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert arrivals[0] == pytest.approx(link.transfer_time(size))
    assert arrivals[1] == pytest.approx(link.occupancy(size) + link.transfer_time(size))


def test_opposite_directions_are_full_duplex(channel):
    engine, ch, link = channel
    a, b = ch.endpoints
    size = 1 * MB
    arrivals = {}

    def node(ep, name):
        send_done = ep.channel.engine.process(ep.channel._inject(
            ep.channel._make_message(ep.node, size, "data", None)))
        msg = yield from ep.recv()
        arrivals[name] = engine.now
        yield send_done

    engine.process(node(a, "a"))
    engine.process(node(b, "b"))
    engine.run()
    # Both directions complete in one transfer_time: no shared bottleneck.
    assert arrivals["a"] == pytest.approx(link.transfer_time(size))
    assert arrivals["b"] == pytest.approx(link.transfer_time(size))


def test_tagged_recv_matches_tag(channel):
    engine, ch, _ = channel
    a, b = ch.endpoints
    order = []

    def sender():
        yield from a.send(100, tag="first")
        yield from a.send(100, tag="second")

    def receiver():
        msg = yield from b.recv(tag="second")
        order.append(msg.tag)
        msg = yield from b.recv(tag="first")
        order.append(msg.tag)

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert order == ["second", "first"]


def test_isend_completes_before_delivery(channel):
    engine, ch, link = channel
    a, b = ch.endpoints
    size = 1 * MB
    t = {}

    def sender():
        req = a.isend(size)
        yield req
        t["send_done"] = engine.now

    def receiver():
        yield from b.recv()
        t["recv_done"] = engine.now

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert t["send_done"] < t["recv_done"]


def test_negative_size_rejected(channel):
    engine, ch, _ = channel
    a, _b = ch.endpoints

    def sender():
        yield from a.send(-1)

    engine.process(sender())
    with pytest.raises(ValueError):
        engine.run()


def test_message_counter(channel):
    engine, ch, _ = channel
    a, b = ch.endpoints

    def sender():
        yield from a.send(10)

    def receiver():
        yield from b.recv()

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert ch.messages_delivered == 1
