"""Structured outputs of the T1-T4 table builders."""

import pytest

from repro.experiments.tables import (
    TUNING_CASES,
    run_table_t2,
    run_table_t4,
    table_t1_rows,
)


def test_t1_rows_have_all_fields():
    rows = table_t1_rows()
    assert len(rows) == 6  # the paper's Sec. 2 inventory (Fast Ethernet
    # is a reference NIC, deliberately outside the T1 table)
    for row in rows:
        assert {"nic", "media", "driver", "price_usd", "pci", "jumbo",
                "link_mbps"} <= set(row)


def test_t1_prices_match_paper():
    prices = {r["nic"]: r["price_usd"] for r in table_t1_rows()}
    assert prices["TrendNet TEG-PCITX"] == 55
    assert prices["SysKonnect SK-9843"] == 565


def test_t2_latency_ordering():
    lat = run_table_t2()
    # The paper's latency hierarchy: VIA < GM < jumbo-DS20 < GigE PCs.
    assert lat["MVICH / Giganet / PC"] < lat["raw GM / Myrinet / PC"]
    assert lat["raw GM / Myrinet / PC"] < lat["raw TCP / SysKonnect jumbo / DS20"]
    assert (
        lat["raw TCP / SysKonnect jumbo / DS20"] < lat["raw TCP / GA620 / PC"]
    )
    assert lat["raw TCP / GA620 / PC"] < lat["LAM/MPI lamd / GA620 / PC"]


def test_t3_cases_cover_every_library_family():
    labels = " ".join(c.label for c in TUNING_CASES)
    for needle in ("MPICH", "PVM", "LAM", "TCGMSG", "MPI/Pro", "GM", "raw TCP"):
        assert needle in labels


def test_t4_fractions_bounded():
    rows = run_table_t4()
    for r in rows:
        frac = r["fraction_of_raw"]
        if frac is not None:
            assert 0.1 < frac <= 1.05, r
