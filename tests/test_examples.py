"""The examples/ directory must keep running — they are documentation.

Each example's ``main()`` is executed with stdout captured; a broken
example fails here before a user finds it.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "reproduce_figure1.py",
    "tuning_study.py",
    "custom_hardware.py",
    "cluster_applications.py",
    "custom_rank_program.py",
    "trace_timelines.py",
    "regression_check.py",
    "cluster_design_study.py",
]

SOCKET_EXAMPLES = ["live_loopback.py"]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    # Examples may read sys.argv; give them a clean command line.
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # every example narrates its result


def test_example_inventory_complete():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SOCKET_EXAMPLES)


def test_live_loopback_example_runs(capsys):
    runpy.run_path(str(EXAMPLES / "live_loopback.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "loopback" in out


def test_quickstart_states_the_headline(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "MPICH" in out and "raw TCP" in out
    assert "%" in out  # the fraction-of-TCP conclusion
