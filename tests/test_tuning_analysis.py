"""Tuning framework and analysis utilities."""

import pytest

from repro.analysis import crossover_size, fraction_of_raw, ranking, saturation_size
from repro.core import run_netpipe
from repro.core.runner import run_many
from repro.experiments import configs
from repro.mplib import Mpich, MpichParams, MpLite, RawGm, RawTcp
from repro.tuning import (
    Mechanism,
    PARAM_REGISTRY,
    autotune_sockbuf,
    format_registry,
    params_for,
    sweep_parameter,
)
from repro.units import kb

GA620 = configs.pc_netgear_ga620()
TRENDNET = configs.pc_trendnet()


# -- params registry --------------------------------------------------------------
def test_registry_covers_all_libraries():
    libs = {p.library for p in PARAM_REGISTRY}
    for needed in ("MPICH", "LAM/MPI", "MPI/Pro", "MP_Lite", "PVM", "TCGMSG",
                   "GM", "MVICH", "OS"):
        assert needed in libs


def test_params_for_case_insensitive():
    assert params_for("mpich") == params_for("MPICH")
    assert len(params_for("MPICH")) == 3


def test_source_constants_are_not_user_tunable():
    """The paper's complaint: key knobs need recompiles."""
    tcgmsg = params_for("TCGMSG")[0]
    assert tcgmsg.mechanism is Mechanism.SOURCE
    assert not tcgmsg.user_tunable
    lam_buf = [p for p in params_for("LAM/MPI") if "buffer" in p.name][0]
    assert not lam_buf.user_tunable


def test_format_registry_renders():
    text = format_registry()
    assert "P4_SOCKBUFSIZE" in text and "SR_SOCK_BUF_SIZE" in text


# -- sweeps -------------------------------------------------------------------------
def test_sweep_parameter_orders_points():
    points = sweep_parameter(
        lambda b: RawTcp(sockbuf=b), [kb(16), kb(64), kb(256)], TRENDNET
    )
    assert [p.value for p in points] == [kb(16), kb(64), kb(256)]
    metrics = [p.metric for p in points]
    assert metrics == sorted(metrics)  # bigger buffers never slower


def test_sweep_parameter_rejects_empty():
    with pytest.raises(ValueError):
        sweep_parameter(lambda b: RawTcp(sockbuf=b), [], TRENDNET)


def test_autotune_finds_trendnet_knee():
    outcome = autotune_sockbuf(lambda b: RawTcp(sockbuf=b), TRENDNET)
    # The TrendNet needs ~128-256 KB to saturate its 550 Mb/s pipeline.
    assert kb(32) < outcome.best_value <= kb(512)
    assert outcome.best_metric == pytest.approx(550, rel=0.06)
    assert outcome.improvement > 2.0


def test_autotune_ga620_is_happy_early():
    outcome = autotune_sockbuf(lambda b: RawTcp(sockbuf=b), GA620)
    # The AceNIC saturates with small buffers: the knee is early.
    assert outcome.best_value <= kb(64)


def test_autotune_mpich_reproduces_5x():
    outcome = autotune_sockbuf(
        lambda b: Mpich(MpichParams(p4_sockbufsize=b)), GA620, start=kb(32)
    )
    assert outcome.improvement > 4.0


def test_autotune_validation():
    with pytest.raises(ValueError):
        autotune_sockbuf(lambda b: RawTcp(sockbuf=b), GA620, start=0)


def test_latency_metric_is_negated():
    points = sweep_parameter(
        lambda b: RawTcp(sockbuf=b), [kb(32)], GA620, metric="latency_us"
    )
    assert points[0].metric < 0  # larger-is-better convention


# -- analysis ------------------------------------------------------------------------
def test_fraction_of_raw():
    results = run_many([RawTcp(), Mpich.tuned(), MpLite()], GA620)
    fracs = fraction_of_raw(results, "raw TCP")
    assert "raw TCP" not in fracs
    assert fracs["MP_Lite"] > 0.97
    assert 0.65 < fracs["MPICH"] < 0.80


def test_fraction_of_raw_missing_label():
    results = run_many([MpLite()], GA620)
    with pytest.raises(KeyError):
        fraction_of_raw(results, "raw TCP")


def test_ranking_by_peak_and_at_size():
    results = run_many([RawTcp(), Mpich.tuned(), MpLite()], GA620)
    assert ranking(results)[-1] == "MPICH"
    assert ranking(results, size=1024)[0] in {"raw TCP", "MP_Lite"}


def test_crossover_gm_beats_tcp_everywhere():
    """GM has both lower latency and higher bandwidth than GigE TCP, so
    the crossover is at the smallest size."""
    gm = run_netpipe(RawGm(), configs.pc_myrinet())
    tcp = run_netpipe(RawTcp(), GA620)
    assert crossover_size(gm, tcp) == gm.points[0].size


def test_crossover_none_when_never_faster():
    tcp = run_netpipe(RawTcp(), GA620)
    mpich = run_netpipe(Mpich.tuned(), GA620)
    assert crossover_size(mpich, tcp) is None


def test_crossover_requires_same_schedule():
    a = run_netpipe(RawTcp(), GA620, sizes=[1, 1024])
    b = run_netpipe(RawTcp(), GA620, sizes=[1, 2048])
    with pytest.raises(ValueError):
        crossover_size(a, b)


def test_saturation_size_orders_by_latency():
    """The 16 us GM transport saturates at smaller messages than the
    120 us TCP path."""
    gm = run_netpipe(RawGm(), configs.pc_myrinet())
    tcp = run_netpipe(RawTcp(), GA620)
    assert saturation_size(gm) < saturation_size(tcp)


def test_saturation_size_validation():
    tcp = run_netpipe(RawTcp(), GA620)
    with pytest.raises(ValueError):
        saturation_size(tcp, fraction=1.5)
