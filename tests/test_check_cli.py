"""The repro-check CLI: exit codes, report format, CLI wiring."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.check.cli import main as check_main

pytestmark = pytest.mark.check

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "check_fixtures"


def test_clean_tree_exits_zero(capsys):
    assert check_main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_each_known_bad_fixture_fails_with_file_line(capsys):
    for name in ("det_bad.py", "purity_bad.py", "yield_bad.py", "cache_bad.py"):
        path = FIXTURES / name
        assert check_main([str(path)]) == 1, name
        out = capsys.readouterr().out
        # file:line:col findings, one per line, then a summary.
        first = out.splitlines()[0]
        assert first.startswith(f"{path}:"), first
        prefix, _, _ = first.partition(" ")
        file_part, line_part, col_part = prefix.rsplit(":", 3)[:3]
        assert int(line_part) >= 1 and int(col_part.rstrip(":")) >= 1


def test_json_format(capsys):
    assert check_main([str(FIXTURES / "cache_bad.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 3 == len(payload["findings"])
    assert {f["rule"] for f in payload["findings"]} == {
        "cache-classvar",
        "cache-initvar",
        "cache-classattr",
    }
    assert all(f["path"].endswith("cache_bad.py") for f in payload["findings"])


def test_list_rules(capsys):
    assert check_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "det-wallclock",
        "det-env",
        "pure-socket",
        "yield-discard",
        "cache-classvar",
    ):
        assert rule in out


def test_missing_path_exits_two(capsys):
    assert check_main(["no/such/dir"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_python_m_repro_check_wiring(capsys):
    # Both paths and --options must pass through ``python -m repro``.
    assert repro_main(["check", str(SRC)]) == 0
    capsys.readouterr()
    assert repro_main(["check", "--list-rules"]) == 0
    assert "yield-discard" in capsys.readouterr().out
    assert repro_main(["check", str(FIXTURES / "det_bad.py")]) == 1
