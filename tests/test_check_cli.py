"""The repro-check CLI: exit codes, report format, CLI wiring."""

import json
from pathlib import Path

import pytest

from repro.__main__ import main as repro_main
from repro.check.cli import main as check_main

pytestmark = pytest.mark.check

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
FIXTURES = Path(__file__).resolve().parent / "check_fixtures"


def test_clean_tree_exits_zero(capsys):
    assert check_main([str(SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_each_known_bad_fixture_fails_with_file_line(capsys):
    for name in ("det_bad.py", "purity_bad.py", "yield_bad.py", "cache_bad.py"):
        path = FIXTURES / name
        assert check_main([str(path)]) == 1, name
        out = capsys.readouterr().out
        # file:line:col findings, one per line, then a summary.
        first = out.splitlines()[0]
        assert first.startswith(f"{path}:"), first
        prefix, _, _ = first.partition(" ")
        file_part, line_part, col_part = prefix.rsplit(":", 3)[:3]
        assert int(line_part) >= 1 and int(col_part.rstrip(":")) >= 1


def test_json_format(capsys):
    assert check_main([str(FIXTURES / "cache_bad.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 3 == len(payload["findings"])
    assert {f["rule"] for f in payload["findings"]} == {
        "cache-classvar",
        "cache-initvar",
        "cache-classattr",
    }
    assert all(f["path"].endswith("cache_bad.py") for f in payload["findings"])


def test_list_rules(capsys):
    assert check_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "det-wallclock",
        "det-env",
        "pure-socket",
        "yield-discard",
        "cache-classvar",
    ):
        assert rule in out


def test_missing_path_exits_two(capsys):
    assert check_main(["no/such/dir"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_python_m_repro_check_wiring(capsys):
    # Both paths and --options must pass through ``python -m repro``.
    assert repro_main(["check", str(SRC)]) == 0
    capsys.readouterr()
    assert repro_main(["check", "--list-rules"]) == 0
    assert "yield-discard" in capsys.readouterr().out
    assert repro_main(["check", str(FIXTURES / "det_bad.py")]) == 1


# -- rule selection -----------------------------------------------------------

def test_rules_glob_selects_families(capsys):
    # det_bad.py only violates det-* rules; selecting cache-* silences it.
    path = FIXTURES / "det_bad.py"
    assert check_main([str(path), "--rules", "cache-*"]) == 0
    capsys.readouterr()
    assert check_main([str(path), "--rules", "det-*"]) == 1
    out = capsys.readouterr().out
    assert "det-wallclock" in out


def test_rules_exact_ids_compose(capsys):
    path = FIXTURES / "det_bad.py"
    assert check_main([str(path), "--rules", "det-random,det-entropy"]) == 1
    out = capsys.readouterr().out
    assert "det-wallclock" not in out
    assert "det-random" in out and "det-entropy" in out


def test_unknown_rule_pattern_exits_two(capsys):
    assert check_main([str(FIXTURES / "det_bad.py"), "--rules", "det-wallclok"]) == 2
    err = capsys.readouterr().err
    assert "det-wallclok" in err
    assert "--list-rules" in err


def test_empty_rule_selection_exits_two(capsys):
    assert check_main([str(FIXTURES / "det_bad.py"), "--rules", ","]) == 2
    assert "selected no rules" in capsys.readouterr().err


def test_parse_error_survives_rule_selection(capsys, tmp_path):
    # A file the analyzer cannot read must fail even when its rule
    # family was not selected: parse-error is never filtered out.
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    assert check_main([str(bad), "--rules", "dim-*"]) == 1
    assert "parse-error" in capsys.readouterr().out


# -- SARIF --------------------------------------------------------------------

def test_sarif_output_shape(capsys):
    assert check_main([str(FIXTURES / "cache_bad.py"), "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-check"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"proto-unmatched", "dim-mixed", "det-wallclock"} <= rule_ids
    results = run["results"]
    assert len(results) == 3
    for result in results:
        assert result["ruleId"].startswith("cache-")
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"].endswith("cache_bad.py")
        assert loc["region"]["startLine"] >= 1


def test_sarif_clean_run_has_no_results(capsys):
    assert check_main([str(FIXTURES / "dim_good.py"), "--format", "sarif"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["results"] == []


# -- AST cache flags ----------------------------------------------------------

def test_cache_flag_and_stats(capsys, tmp_path):
    cache_dir = tmp_path / "ast-cache"
    target = str(SRC / "repro" / "check")
    assert check_main([target, "--cache", str(cache_dir), "--stats"]) == 0
    cold = capsys.readouterr().err
    assert "0 from AST cache" in cold

    assert check_main([target, "--cache", str(cache_dir), "--stats"]) == 0
    warm = capsys.readouterr().err
    # Warm run: every file served from cache, zero parsed.
    assert "0 parsed" in warm
    assert "0 from AST cache" not in warm


def test_stats_reports_summary_reuse_counts(capsys, tmp_path):
    cache_dir = tmp_path / "ast-cache"
    target = str(SRC / "repro" / "check")
    assert check_main([target, "--cache", str(cache_dir), "--stats"]) == 0
    cold = capsys.readouterr().err
    assert "0 reused" in cold and "summaries computed" in cold

    assert check_main([target, "--cache", str(cache_dir), "--stats"]) == 0
    warm = capsys.readouterr().err
    assert "0 summaries computed" in warm


# -- incremental analysis (--changed) -----------------------------------------

def test_changed_requires_cache(capsys):
    assert check_main([str(SRC), "--changed"]) == 2
    assert "--changed requires --cache" in capsys.readouterr().err


def test_changed_analyzes_only_edited_files(capsys, tmp_path):
    # A private copy of two fixtures, so edits don't touch the corpus.
    tree = tmp_path / "tree"
    tree.mkdir()
    clean = tree / "clean.py"
    clean.write_text((FIXTURES / "dim_good.py").read_text())
    bad = tree / "bad.py"
    bad.write_text((FIXTURES / "det_bad.py").read_text())
    cache_dir = str(tmp_path / "ast-cache")

    # Cold: everything is "changed", findings reported as usual.
    assert check_main(
        [str(tree), "--cache", cache_dir, "--changed", "--stats"]
    ) == 1
    captured = capsys.readouterr()
    assert "2 changed" in captured.err
    assert "det-wallclock" in captured.out

    # Warm, nothing edited: zero changed files, zero findings — the
    # known-bad file is skipped because it did not change.
    assert check_main(
        [str(tree), "--cache", cache_dir, "--changed", "--stats"]
    ) == 0
    captured = capsys.readouterr()
    assert "0 changed" in captured.err
    assert "0 findings" in captured.out

    # Edit only the clean file: exactly one file re-analyzed, and the
    # unchanged bad file's findings still do not resurface.
    clean.write_text(clean.read_text() + "\n# touched\n")
    assert check_main(
        [str(tree), "--cache", cache_dir, "--changed", "--stats"]
    ) == 0
    captured = capsys.readouterr()
    assert "1 changed" in captured.err
    assert "1 parsed" in captured.err

    # A full (non---changed) run over the same cache still sees the
    # bad file: --changed filters reports, it never hides state.
    assert check_main([str(tree), "--cache", cache_dir]) == 1
    assert "det-wallclock" in capsys.readouterr().out
