"""Property tests over the library-spec space.

Random (valid) TcpLibSpec values must always produce a sane library:
positive latencies, monotone transfer times, ping-pongs that terminate,
and throughput that never exceeds the raw transport's.
"""

from hypothesis import given, settings, strategies as st

from repro.core import measure_pingpong, run_netpipe
from repro.experiments import configs
from repro.mplib import RawTcp
from repro.mplib.tcp_base import Route, TcpLibrary, TcpLibSpec
from repro.sim import Engine
from repro.units import kb, us

CFG = configs.pc_netgear_ga620()


def specs():
    return st.builds(
        TcpLibSpec,
        library=st.just("FuzzLib"),
        sockbuf_request=st.one_of(
            st.none(), st.integers(min_value=kb(4), max_value=kb(1024))
        ),
        use_max_sockbuf=st.booleans(),
        progress_stall=st.floats(min_value=0, max_value=us(5000)),
        latency_adder=st.floats(min_value=0, max_value=us(200)),
        header_bytes=st.integers(min_value=0, max_value=256),
        eager_threshold=st.one_of(
            st.none(), st.integers(min_value=0, max_value=kb(512))
        ),
        rx_staging_copies=st.integers(min_value=0, max_value=3),
        tx_staging_copies=st.integers(min_value=0, max_value=3),
        overlap_copy_chunk=st.one_of(
            st.none(), st.integers(min_value=1024, max_value=kb(64))
        ),
        conversion_rate=st.one_of(
            st.none(), st.floats(min_value=50e6, max_value=1e9)
        ),
        fragment_size=st.one_of(
            st.none(), st.integers(min_value=1024, max_value=kb(64))
        ),
        fragment_cost=st.floats(min_value=0, max_value=us(20)),
        route=st.just(Route.DIRECT),
        daemon_bandwidth=st.none(),
        daemon_latency=st.just(0.0),
    )


def oneway(spec: TcpLibSpec, size: int) -> float:
    lib = TcpLibrary(spec)
    engine = Engine()
    a, b = lib.build(engine, CFG)
    return measure_pingpong(engine, a, b, size)


@settings(max_examples=40, deadline=None)
@given(spec=specs(), size=st.integers(min_value=1, max_value=2 * 1024 * 1024))
def test_any_spec_pingpong_terminates_positively(spec, size):
    t = oneway(spec, size)
    assert t > 0


@settings(max_examples=30, deadline=None)
@given(
    spec=specs(),
    a=st.integers(min_value=1, max_value=1024 * 1024),
    b=st.integers(min_value=1, max_value=1024 * 1024),
)
def test_transfer_time_monotone_in_size(spec, a, b):
    lo, hi = sorted((a, b))
    # Rendezvous switching can add a fixed handshake, so compare within
    # the same protocol regime.
    t = spec.eager_threshold
    if t is not None and (lo < t) != (hi < t):
        return
    assert oneway(spec, lo) <= oneway(spec, hi) * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(spec=specs(), size=st.integers(min_value=1024, max_value=2 * 1024 * 1024))
def test_no_spec_beats_raw_tcp(spec, size):
    """A protocol layer can only add costs: the raw transport with the
    same effective socket buffer is a lower bound on one-way time."""
    raw_spec = TcpLibSpec(
        library="raw",
        sockbuf_request=spec.sockbuf_request,
        use_max_sockbuf=spec.use_max_sockbuf,
        header_bytes=0,
    )
    assert oneway(spec, size) >= oneway(raw_spec, size) * (1 - 1e-9)


@settings(max_examples=20, deadline=None)
@given(spec=specs())
def test_netpipe_sweep_completes(spec):
    r = run_netpipe(TcpLibrary(spec), CFG, sizes=[1, 64, kb(8), kb(256)])
    assert len(r) == 4
    assert all(p.oneway_time > 0 for p in r.points)
