"""The python -m repro command-line interface."""

import pytest

from repro.__main__ import main


def test_figure_command_passes_audit(capsys):
    assert main(["figure", "fig4"]) == 0
    out = capsys.readouterr().out
    assert "Myrinet" in out and "PASS" in out and "MISS" not in out


def test_libraries_command_lists_registry(capsys):
    assert main(["libraries"]) == 0
    out = capsys.readouterr().out
    for name in ("mpich", "mplite", "pvm", "tcgmsg", "mvich", "raw-gm"):
        assert name in out


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "T1" in out and "T3" in out and "P4_SOCKBUFSIZE" in out


def test_cpu_command(capsys):
    assert main(["cpu"]) == 0
    out = capsys.readouterr().out
    assert "GM polling" in out and "rx avail" in out


def test_export_command(tmp_path, capsys):
    assert main(["export", str(tmp_path / "curves")]) == 0
    files = list((tmp_path / "curves").iterdir())
    assert any(f.suffix == ".json" for f in files)
    assert any(f.name.endswith(".np.out") for f in files)
    # One json + one np.out per curve of the five figures.
    assert len(files) == 60


def test_audit_command_writes_file(tmp_path, capsys):
    path = tmp_path / "EXP.md"
    assert main(["audit", str(path)]) == 0
    text = path.read_text()
    assert "Anchor summary" in text and "| MISS |" not in text


def test_unknown_command_exits_nonzero():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
