"""Calibration sensitivity analysis."""

import pytest

from repro.analysis import format_sensitivity, perturb_nic, sensitivity_sweep
from repro.experiments import FIG4
from repro.hw.catalog import NETGEAR_GA620


def test_perturb_scales_one_field():
    p = perturb_nic(NETGEAR_GA620, "ack_rtt", 0.10)
    assert p.ack_rtt == pytest.approx(NETGEAR_GA620.ack_rtt * 1.1)
    assert p.rx_per_packet_time == NETGEAR_GA620.rx_per_packet_time


def test_perturb_clamps_efficiency():
    p = perturb_nic(NETGEAR_GA620, "link_efficiency", 0.5)
    assert p.link_efficiency == 1.0


def test_perturb_rejects_quoted_fields():
    with pytest.raises(ValueError):
        perturb_nic(NETGEAR_GA620, "price_usd", 0.1)


def test_sweep_validation():
    with pytest.raises(ValueError):
        sensitivity_sweep(FIG4, fraction=0.0)


def test_fig4_robust_to_small_perturbations():
    """Figure 4's anchors should survive 3% shifts in every calibrated
    parameter — the reproduction is not knife-edge."""
    rows = sensitivity_sweep(FIG4, fraction=0.03)
    assert all(r.survival >= 0.8 for r in rows), format_sensitivity(rows)
    # And most directions should be fully clean.
    assert sum(r.survival == 1.0 for r in rows) >= len(rows) - 3


def test_large_perturbations_do_break_anchors():
    """Sanity: the anchors are not vacuous — a 40% shift in the
    latency-setting parameter must flip some."""
    rows = sensitivity_sweep(FIG4, fraction=0.4, fields=("wire_latency",))
    assert any(r.survival < 1.0 for r in rows)


def test_format_renders():
    rows = sensitivity_sweep(FIG4, fraction=0.03, fields=("ack_rtt",))
    text = format_sensitivity(rows)
    assert "ack_rtt" in text and "%" in text
