"""The derived code salt: model edits must invalidate cached curves."""

from pathlib import Path

import pytest

from repro.exec import fingerprint
from repro.exec.fingerprint import (
    CODE_SALT,
    SALTED_PACKAGES,
    code_salt,
    source_digest,
    sweep_fingerprint,
)
from repro.experiments import configs
from repro.mplib import Mpich

pytestmark = pytest.mark.check


def make_tree(root: Path) -> None:
    (root / "sim").mkdir(parents=True)
    (root / "sim" / "engine.py").write_text("GAP = 1.0\n")
    (root / "net" / "sub").mkdir(parents=True)
    (root / "net" / "tcp.py").write_text("RATE = 125e6\n")
    (root / "net" / "sub" / "deep.py").write_text("X = 1\n")
    (root / "experiments").mkdir()
    (root / "experiments" / "figures.py").write_text("FIGS = 5\n")


def test_digest_changes_when_a_simulation_source_changes(tmp_path):
    make_tree(tmp_path)
    before = source_digest(tmp_path)
    (tmp_path / "sim" / "engine.py").write_text("GAP = 2.0\n")
    after = source_digest(tmp_path)
    assert before != after


def test_digest_sees_nested_modules_and_new_files(tmp_path):
    make_tree(tmp_path)
    before = source_digest(tmp_path)
    (tmp_path / "net" / "sub" / "deep.py").write_text("X = 2\n")
    changed = source_digest(tmp_path)
    assert changed != before
    (tmp_path / "mplib").mkdir()
    (tmp_path / "mplib" / "new_model.py").write_text("NEW = True\n")
    assert source_digest(tmp_path) != changed


def test_digest_ignores_non_simulation_packages(tmp_path):
    make_tree(tmp_path)
    before = source_digest(tmp_path)
    (tmp_path / "experiments" / "figures.py").write_text("FIGS = 6\n")
    assert source_digest(tmp_path) == before


def test_digest_is_stable_and_falls_back_when_empty(tmp_path):
    make_tree(tmp_path)
    assert source_digest(tmp_path) == source_digest(tmp_path)
    empty = tmp_path / "nothing_here"
    empty.mkdir()
    assert source_digest(empty) is None


def test_code_salt_derives_from_the_real_tree():
    salt = code_salt()
    assert salt.startswith(CODE_SALT + "+")
    digest = source_digest()
    assert digest is not None
    assert salt == f"{CODE_SALT}+{digest[:16]}"
    # The hashed packages are exactly the curve-determining ones.
    assert set(SALTED_PACKAGES) == {"sim", "net", "mplib", "hw", "core"}


def test_sweep_fingerprint_folds_in_the_derived_salt(monkeypatch):
    lib, cfg = Mpich.tuned(), configs.pc_netgear_ga620()
    base = sweep_fingerprint(lib, cfg, sizes=[1, 2, 4])
    monkeypatch.setattr(
        fingerprint, "code_salt", lambda: CODE_SALT + "+deadbeefdeadbeef"
    )
    assert sweep_fingerprint(lib, cfg, sizes=[1, 2, 4]) != base
