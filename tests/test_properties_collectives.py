"""Property-based tests: collective algorithms conserve bytes.

Using the communicators' instrumentation, every collective's total
traffic must match its algorithmic footprint regardless of world size
or payload — the invariant that catches tree-indexing bugs.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.cluster import build_world, run_ranks
from repro.collectives import BARRIER_MSG_BYTES
from repro.experiments import configs
from repro.mplib import RawTcp
from repro.sim import Engine

CFG = configs.pc_netgear_ga620()

worlds = st.integers(min_value=2, max_value=9)
payloads = st.integers(min_value=1, max_value=64 * 1024)


def run_collective(nranks, op):
    engine = Engine()
    comms = build_world(engine, RawTcp(), CFG, nranks)

    def program(comm):
        yield from op(comm)
        return comm.bytes_sent

    sent = run_ranks(engine, comms, program)
    return sum(sent), sent


@settings(max_examples=25, deadline=None)
@given(nranks=worlds, root=st.integers(min_value=0, max_value=100))
def test_bcast_sends_exactly_p_minus_1_messages(nranks, root):
    root %= nranks
    n = 1000
    total, _ = run_collective(nranks, lambda c: c.bcast(root, n))
    # A broadcast tree delivers the payload to p-1 ranks, once each.
    assert total == (nranks - 1) * n


@settings(max_examples=25, deadline=None)
@given(nranks=worlds, root=st.integers(min_value=0, max_value=100), n=payloads)
def test_reduce_sends_exactly_p_minus_1_messages(nranks, root, n):
    root %= nranks
    total, _ = run_collective(nranks, lambda c: c.reduce(root, n))
    assert total == (nranks - 1) * n


@settings(max_examples=20, deadline=None)
@given(nranks=worlds, n=payloads)
def test_allgather_ring_traffic(nranks, n):
    total, per_rank = run_collective(nranks, lambda c: c.allgather(n))
    # Ring: every rank sends one block per step, p-1 steps.
    assert total == nranks * (nranks - 1) * n
    assert all(s == (nranks - 1) * n for s in per_rank)


@settings(max_examples=20, deadline=None)
@given(nranks=worlds, n=payloads)
def test_alltoall_traffic(nranks, n):
    total, per_rank = run_collective(nranks, lambda c: c.alltoall(n))
    assert total == nranks * (nranks - 1) * n
    assert all(s == (nranks - 1) * n for s in per_rank)


@settings(max_examples=25, deadline=None)
@given(nranks=worlds, root=st.integers(min_value=0, max_value=100), n=payloads)
def test_gather_moves_every_block_exactly_once_per_level(nranks, root, n):
    from repro.collectives import gather

    root %= nranks
    total, _ = run_collective(nranks, lambda c: gather(c, root, n))
    # Binomial gather: rank r's block crosses the fabric once per tree
    # level between r and the root; total = sum over non-root ranks of
    # the subtree sizes they forward.  Lower bound: every block moves
    # at least once; upper bound: at most ceil(log2 p) times.
    assert total >= (nranks - 1) * n
    assert total <= (nranks - 1) * n * math.ceil(math.log2(nranks))


@settings(max_examples=25, deadline=None)
@given(nranks=worlds, root=st.integers(min_value=0, max_value=100), n=payloads)
def test_scatter_mirrors_gather_traffic(nranks, root, n):
    from repro.collectives import gather, scatter

    root %= nranks
    up, _ = run_collective(nranks, lambda c: gather(c, root, n))
    down, _ = run_collective(nranks, lambda c: scatter(c, root, n))
    # Scatter is gather reversed: identical traffic volume.
    assert down == up


@settings(max_examples=15, deadline=None)
@given(nranks=worlds)
def test_barrier_traffic_is_log_rounds(nranks):
    total, per_rank = run_collective(nranks, lambda c: c.barrier())
    rounds = math.ceil(math.log2(nranks))
    assert all(s == rounds * BARRIER_MSG_BYTES for s in per_rank)


@settings(max_examples=15, deadline=None)
@given(nranks=st.sampled_from([2, 4, 8]), n=payloads)
def test_allreduce_pow2_traffic(nranks, n):
    total, per_rank = run_collective(nranks, lambda c: c.allreduce(n))
    # Recursive doubling: log2(p) exchanges of n bytes per rank.
    rounds = int(math.log2(nranks))
    assert all(s == rounds * n for s in per_rank)
