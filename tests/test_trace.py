"""Execution tracing and the ASCII timeline."""

import pytest

from repro.cluster import Tracer, build_world, run_ranks
from repro.cluster.trace import TraceEvent
from repro.experiments import configs
from repro.mplib import Mpich, MpLite
from repro.sim import Engine
from repro.units import kb

GA620 = configs.pc_netgear_ga620()


def traced_run(library, program, nranks=2):
    tracer = Tracer()
    engine = Engine()
    comms = build_world(engine, library, GA620, nranks, tracer=tracer)
    run_ranks(engine, comms, program)
    return tracer


def pingpong(comm):
    if comm.rank == 0:
        yield from comm.send(1, kb(64))
        yield from comm.recv(1, kb(64))
    else:
        yield from comm.recv(0, kb(64))
        yield from comm.send(0, kb(64))


def test_events_recorded_for_both_ranks():
    tracer = traced_run(MpLite(), pingpong)
    assert {e.rank for e in tracer.events} == {0, 1}
    kinds = {e.kind for e in tracer.events}
    assert "send" in kinds and "recv" in kinds


def test_event_details_name_peer_and_size():
    tracer = traced_run(MpLite(), pingpong)
    sends = [e for e in tracer.events if e.kind == "send" and e.rank == 0]
    assert sends and "->1" in sends[0].detail and "65536B" in sends[0].detail


def test_intervals_are_ordered_and_positive():
    tracer = traced_run(MpLite(), pingpong)
    for e in tracer.events:
        assert e.t1 >= e.t0 >= 0.0
    t0, t1 = tracer.span()
    assert t1 > t0 == 0.0


def test_time_by_kind_accounts_compute():
    def program(comm):
        yield from comm.compute(3e-3)
        yield from comm.barrier()

    tracer = traced_run(MpLite(), program)
    by_kind = tracer.time_by_kind(0)
    assert by_kind["compute"] == pytest.approx(3e-3)
    assert "collective" in by_kind


def test_overlap_visible_in_wait_time():
    """The trace quantifies the paper's overlap story: the blocking
    library waits far longer after the same compute."""

    def program(comm):
        peer = 1 - comm.rank
        req = comm.isend(peer, kb(512)) if comm.rank == 0 else comm.irecv(peer, kb(512))
        yield from comm.compute(5e-3)
        yield from comm.wait(req)

    lite = traced_run(MpLite(), program).time_by_kind(0).get("wait", 0.0)
    p4 = traced_run(Mpich.tuned(), program).time_by_kind(0).get("wait", 0.0)
    assert p4 > 2 * lite


def test_timeline_renders_lanes():
    tracer = traced_run(MpLite(), pingpong)
    art = tracer.render_timeline(width=40)
    assert "rank  0 |" in art and "rank  1 |" in art
    assert "legend" in art
    lanes = [l for l in art.splitlines() if l.startswith("rank")]
    assert all(len(l) == len(lanes[0]) for l in lanes)


def test_timeline_empty_trace():
    assert Tracer().render_timeline() == "(empty trace)"


def test_tracer_validates_intervals():
    t = Tracer()
    with pytest.raises(ValueError):
        t.record(0, "send", "", 2.0, 1.0)
    with pytest.raises(ValueError):
        Tracer().span()


def test_unknown_kind_kept_and_rendered_as_fallback_lane():
    """Unregistered activity kinds are recorded, not rejected, and show
    up in the timeline under the '?' lane code."""
    t = Tracer()
    t.record(0, "probe", "library-specific lane", 0.0, 1.0)
    assert t.events[0].kind == "probe"
    assert t.time_by_kind(0) == {"probe": pytest.approx(1.0)}
    art = t.render_timeline(width=10)
    assert "?" in art


def test_trace_events_share_the_obs_export_path():
    """A program trace is obs spans: to_recorder() feeds the same
    Chrome-trace exporter the protocol traces use."""
    from repro.obs import Span, to_chrome_trace

    tracer = traced_run(MpLite(), pingpong)
    assert all(isinstance(e, Span) for e in tracer.events)
    rec = tracer.to_recorder(meta={"label": "pingpong"})
    doc = to_chrome_trace(rec)
    names = {e["name"] for e in doc["traceEvents"]}
    assert "send" in names and "recv" in names
    tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert tids == {0, 1}


def test_trace_event_duration():
    e = TraceEvent(rank=0, kind="send", detail="", t0=1.0, t1=3.5)
    assert e.duration == pytest.approx(2.5)


def test_untraced_run_records_nothing():
    engine = Engine()
    comms = build_world(engine, MpLite(), GA620, 2)
    run_ranks(engine, comms, pingpong)
    assert all(c.tracer is None for c in comms)
