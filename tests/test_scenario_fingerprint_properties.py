"""Property-based tests (hypothesis) for the scenario-fingerprint contract.

The scenario store is content-addressed by spec fingerprint, so the
fingerprint must behave like a true content hash of the spec: any
serialization round trip (JSON or the TOML emitter) lands on the same
digest, and changing any field that affects the run lands on a new
one.  A collision would serve one scenario's cached result for a
different scenario; a round-trip miss would make every file-loaded
spec a cache miss against its in-memory twin.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenario import (
    CpuSpec,
    FaultEntry,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
    WorkloadSpec,
    parse_spec,
    spec_to_toml,
)

pytestmark = pytest.mark.scenario

LIBRARIES = ("mpich", "mplite", "pvm", "raw-tcp", "mpipro")
CONFIGS = ("pc_netgear_ga620", "ds20_syskonnect_jumbo", "pc_giganet")

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=1 << 18),
    min_size=1, max_size=4, unique=True,
).map(lambda xs: tuple(sorted(xs)))


@st.composite
def specs(draw) -> ScenarioSpec:
    nranks = draw(st.integers(min_value=2, max_value=8))
    ranks = st.integers(min_value=0, max_value=nranks - 1)
    traffic = draw(st.lists(st.builds(
        TrafficSpec,
        kind=st.sampled_from(("constant", "onoff", "alltoall")),
        rate=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
        message_bytes=st.integers(min_value=64, max_value=1 << 16),
        ranks=st.lists(ranks, min_size=2, max_size=nranks, unique=True)
              .map(lambda xs: tuple(sorted(xs))),
    ), max_size=2).map(tuple))
    workload_kind = draw(st.sampled_from(("pingpong", "halo", "alltoall")))
    if workload_kind == "pingpong":
        pair = draw(st.lists(ranks, min_size=2, max_size=2, unique=True)
                    .map(lambda xs: tuple(sorted(xs))))
        workload = WorkloadSpec(kind="pingpong", ranks=pair,
                                sizes=draw(sizes_strategy),
                                repeats=draw(st.integers(1, 3)))
    else:
        workload = WorkloadSpec(kind=workload_kind,
                                iterations=draw(st.integers(1, 4)))
    return ScenarioSpec(
        name=draw(st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12,
        )),
        library=draw(st.sampled_from(LIBRARIES)),
        config=draw(st.sampled_from(CONFIGS)),
        nranks=nranks,
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        topology=draw(st.one_of(
            st.just(TopologySpec()),
            st.builds(TopologySpec, kind=st.just("two-tier"),
                      leaf_size=st.integers(2, 4)),
        )),
        workload=workload,
        traffic=traffic,
        cpu=draw(st.one_of(st.none(), st.builds(
            CpuSpec,
            load=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
        ))),
        faults=draw(st.lists(st.builds(
            FaultEntry,
            kind=st.sampled_from(("raise", "corrupt")),
            times=st.integers(1, 2),
        ), max_size=2).map(tuple)),
    )


@given(spec=specs())
@settings(max_examples=60, deadline=None)
def test_json_round_trip_preserves_fingerprint(spec):
    wire = json.loads(json.dumps(spec.to_jsonable()))
    back = ScenarioSpec.from_jsonable(wire)
    assert back == spec
    assert back.fingerprint() == spec.fingerprint()


@given(spec=specs())
@settings(max_examples=40, deadline=None)
def test_toml_round_trip_preserves_fingerprint(spec):
    back = parse_spec(spec_to_toml(spec), fmt="toml")
    assert back == spec
    assert back.fingerprint() == spec.fingerprint()


@given(spec=specs())
@settings(max_examples=40, deadline=None)
def test_fingerprint_is_pure(spec):
    assert spec.fingerprint() == spec.fingerprint()


#: One mutation per spec field that must change the digest.  ``name``
#: is included deliberately: the fingerprint addresses the *scenario*,
#: and two differently-named scenarios are different documents even
#: when their physics agree (the fault plan matches on name).
MUTATIONS = [
    lambda s: dataclasses.replace(s, name=s.name + "-x"),
    lambda s: dataclasses.replace(
        s, library="mplite" if s.library != "mplite" else "mpich"),
    lambda s: dataclasses.replace(
        s, config="pc_giganet" if s.config != "pc_giganet"
        else "pc_netgear_ga620"),
    lambda s: dataclasses.replace(s, nranks=s.nranks + 1),
    lambda s: dataclasses.replace(s, seed=s.seed + 1),
    lambda s: dataclasses.replace(s, tuned=not s.tuned),
    lambda s: dataclasses.replace(
        s, traffic=s.traffic + (TrafficSpec(rate=0.11),)),
    lambda s: dataclasses.replace(
        s, cpu=CpuSpec(load=0.33) if s.cpu is None else None),
    lambda s: dataclasses.replace(
        s, faults=s.faults + (FaultEntry(kind="raise"),)),
]


@given(spec=specs(), which=st.integers(0, len(MUTATIONS) - 1))
@settings(max_examples=60, deadline=None)
def test_any_field_change_changes_fingerprint(spec, which):
    mutated = MUTATIONS[which](spec)
    assert mutated != spec
    assert mutated.fingerprint() != spec.fingerprint()


@given(spec=specs())
@settings(max_examples=30, deadline=None)
def test_quiet_twin_fingerprint_matches_explicit_construction(spec):
    # The runner's baseline lookup hinges on this: the quiet twin's
    # digest must be a function of the stripped spec alone, however
    # noisy the original was.
    twin = spec.quiet()
    rebuilt = dataclasses.replace(
        spec, traffic=(), cpu=None, faults=(),
    )
    assert twin.fingerprint() == rebuilt.fingerprint()
