"""Verify tier: the ``python -m repro verify`` command surface.

Exit codes, output formats (text/json/sarif), the cache environment
default, and argument validation — everything CI scripts rely on.
"""

import json

import pytest

from repro.verify.cli import main

pytestmark = pytest.mark.verify


def test_single_library_verifies_clean(capsys):
    assert main(["mpich"]) == 0
    out = capsys.readouterr().out
    assert "no counterexamples" in out


def test_stats_output_accounts_for_the_exploration(capsys):
    assert main(["mpich", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "path pairs" in out and "mpich" in out


def test_json_format_is_machine_readable(capsys):
    assert main(["mpich", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["verdicts"][0]["library"] == "mpich"
    assert payload["verdicts"][0]["counterexamples"] == []


def test_sarif_format_is_a_valid_empty_run(capsys):
    assert main(["mpich", "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["results"] == []
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert {"verify-deadlock", "verify-threshold",
            "verify-progress", "verify-liveness"} <= rule_ids


def test_unknown_library_is_a_usage_error(capsys):
    assert main(["definitely-not-a-library"]) == 2
    assert "unknown library" in capsys.readouterr().err


def test_malformed_sizes_are_a_usage_error(capsys):
    assert main(["mpich", "--sizes", "1,zap"]) == 2
    assert "--sizes" in capsys.readouterr().err


def test_cache_flag_wins_over_environment(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_CACHE", str(tmp_path / "env"))
    assert main(["mpich", "--cache", str(tmp_path / "flag")]) == 0
    capsys.readouterr()
    assert (tmp_path / "flag").exists()
    assert not (tmp_path / "env").exists()


def test_cache_environment_default(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_CACHE", str(tmp_path / "env"))
    assert main(["mpich"]) == 0
    capsys.readouterr()
    assert (tmp_path / "env").exists()


def test_module_entry_point_forwards(capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["verify", "mpich", "--stats"]) == 0
    assert "path pairs" in capsys.readouterr().out
