"""Tracing is free and invisible: golden parity and pool transport.

Two guarantees the obs subsystem makes to the rest of the repo:

* **bit-identical curves** — running a figure with tracing on produces
  exactly the curves pinned in ``tests/golden_curves.json``; the hooks
  observe the simulation, they never perturb it;
* **pool transparency** — traced sweeps cross the
  :mod:`repro.exec` process pool like untraced ones, and the recorders
  ride home with the results.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.exec import canonicalize
from repro.exec.scheduler import SweepRequest, execute_sweeps
from repro.experiments import ALL_FIGURES, configs
from repro.mplib import get_library

pytestmark = pytest.mark.obs

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_curves.json"


def curve_digest(result) -> str:
    """SHA-256 over one curve's canonical form (as test_golden_curves)."""
    return hashlib.sha256(canonicalize(result).encode("utf-8")).hexdigest()


def test_traced_fig1_digests_match_the_pinned_goldens():
    """The whole point of zero-overhead-when-off *and* observe-only
    when on: a traced fig1 reproduces the golden digests bit for bit."""
    golden = json.loads(GOLDEN_PATH.read_text())["digests"]
    fig1 = ALL_FIGURES[0]
    assert fig1.id == "fig1"
    results, report = fig1.run_with_report(trace=True)
    digests = {label: curve_digest(r) for label, r in results.items()}
    assert digests == golden["fig1"]
    # and every curve actually carried a trace home
    assert sorted(report.traces) == sorted(fig1.labels())
    assert all(rec.spans for rec in report.traces.values())


def test_trace_survives_the_process_pool():
    reqs = [
        SweepRequest(
            label=name,
            library=get_library(name),
            config=configs.pc_netgear_ga620(),
            sizes=(64, 1024, 262144),
        )
        for name in ("mpich", "mplite")
    ]
    results, report = execute_sweeps(
        reqs, max_workers=2, cache=None, trace=True
    )
    assert sorted(report.traces) == ["mpich", "mplite"]
    for label, rec in report.traces.items():
        assert rec.meta["label"] == label
        assert rec.clock is None  # dropped at the pickle boundary
        assert rec.spans and rec.counters["sim.runs"] > 0
    # traced results identical to a plain serial run
    plain, _ = execute_sweeps(reqs, max_workers=1, cache=None)
    assert [curve_digest(r) for r in results] == [
        curve_digest(r) for r in plain
    ]


def test_trace_bypasses_the_cache(tmp_path):
    from repro.exec import SweepCache

    cache = SweepCache(str(tmp_path / "cache"))
    req = SweepRequest(
        label="raw-tcp",
        library=get_library("raw-tcp"),
        config=configs.pc_netgear_ga620(),
        sizes=(64, 4096),
    )
    # warm the cache untraced
    execute_sweeps([req], cache=cache)
    results, report = execute_sweeps([req], cache=cache, trace=True)
    assert report.cache_hits == 0 and report.sweeps_simulated == 1
    assert "raw-tcp" in report.traces


def test_executor_events_live_on_the_report_recorder():
    from repro.exec.scheduler import RunReport

    report = RunReport(workers=1)
    report.record_event("curve", 2, "timeout", "deadline blown")
    (event,) = report.events
    assert (event.label, event.attempt, event.kind) == ("curve", 2, "timeout")
    assert "deadline" in event.detail
    (span,) = report.obs.spans_by_cat("exec-event")
    assert span.name == "exec.timeout" and span.is_point
    assert "timeout" in report.render()
