"""GM (Myrinet) and VIA transport models against the paper's anchors."""

import pytest

from repro.hw.catalog import (
    GIGANET_CLAN,
    MYRINET_PCI64A,
    NETGEAR_GA620,
    PENTIUM4_PC,
    SYSKONNECT_SK9843,
)
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.net.gm import GmModel, GmReceiveMode, IpOverGmModel
from repro.net.tcp import TcpTuning
from repro.net.via import ViaFlavor, ViaModel
from repro.units import MB, kb, to_mbps, to_us

BIG = 8 * MB


def myri_cfg():
    return ClusterConfig(PENTIUM4_PC, MYRINET_PCI64A)


def clan_cfg():
    # Giganet tests used an 8-port switch (Sec. 6).
    return ClusterConfig(PENTIUM4_PC, GIGANET_CLAN, back_to_back=False)


def sk_cfg():
    return ClusterConfig(PENTIUM4_PC, SYSKONNECT_SK9843, sysctl=TUNED_SYSCTL)


# -- GM ---------------------------------------------------------------------------
def test_raw_gm_reaches_800_mbps():
    m = GmModel(myri_cfg())
    assert to_mbps(m.rate(BIG)) == pytest.approx(800, abs=20)


def test_raw_gm_latency_16us():
    m = GmModel(myri_cfg())
    assert to_us(m.latency0) == pytest.approx(16, abs=1)


def test_gm_blocking_mode_latency_36us():
    """Sec. 5: 'the Blocking mode has a latency of 36 us compared to
    16 us for the others.'"""
    m = GmModel(myri_cfg(), GmReceiveMode.BLOCKING)
    assert to_us(m.latency0) == pytest.approx(36, abs=2)


def test_gm_polling_and_hybrid_identical():
    p = GmModel(myri_cfg(), GmReceiveMode.POLLING)
    h = GmModel(myri_cfg(), GmReceiveMode.HYBRID)
    assert p.latency0 == h.latency0
    assert p.rate(BIG) == h.rate(BIG)


def test_gm_blocking_same_throughput_as_polling():
    """All modes 'produce approximately the same results' for bandwidth."""
    b = GmModel(myri_cfg(), GmReceiveMode.BLOCKING)
    p = GmModel(myri_cfg(), GmReceiveMode.POLLING)
    assert b.rate(BIG) == p.rate(BIG)


def test_gm_is_pci_limited_on_the_pcs():
    m = GmModel(myri_cfg())
    assert m.rate(BIG) == pytest.approx(myri_cfg().pci_bandwidth)


def test_gm_requires_myrinet_nic():
    with pytest.raises(ValueError):
        GmModel(ClusterConfig(PENTIUM4_PC, NETGEAR_GA620))


# -- IP over GM ---------------------------------------------------------------------
def test_ip_gm_latency_48us():
    m = IpOverGmModel(myri_cfg(), TcpTuning(sockbuf_request=kb(512)))
    assert to_us(m.latency0) == pytest.approx(48, abs=2)


def test_ip_gm_throughput_similar_to_gige_tcp():
    """Sec. 5: IP-GM 'otherwise offers similar performance' to TCP on
    GigE (~550 Mb/s class, far below raw GM's 800)."""
    m = IpOverGmModel(myri_cfg(), TcpTuning(sockbuf_request=kb(512)))
    assert 450 <= to_mbps(m.rate(BIG)) <= 650


def test_ip_gm_requires_myrinet():
    with pytest.raises(ValueError):
        IpOverGmModel(ClusterConfig(PENTIUM4_PC, NETGEAR_GA620))


# -- VIA ---------------------------------------------------------------------------
def test_giganet_hardware_via_reaches_800():
    m = ViaModel(clan_cfg())
    assert m.flavor is ViaFlavor.HARDWARE
    assert to_mbps(m.rate(BIG)) == pytest.approx(800, abs=20)


def test_giganet_latency_under_11us():
    m = ViaModel(clan_cfg())
    assert to_us(m.latency0) <= 11.0


def test_mvia_over_syskonnect_reaches_425():
    """Sec. 6.2: 'MVICH and MP_Lite/M-VIA ... reached a maximum of
    425 Mbps with a 42 us latency.'"""
    m = ViaModel(sk_cfg())
    assert m.flavor is ViaFlavor.SOFTWARE
    assert to_mbps(m.rate(BIG)) == pytest.approx(425, abs=20)


def test_mvia_latency_42us():
    m = ViaModel(sk_cfg())
    assert to_us(m.latency0) == pytest.approx(42, abs=2)


def test_mvia_matches_raw_tcp_on_same_hardware():
    """The paper's M-VIA punchline: 'approximately the same performance
    that raw TCP offers for this hardware configuration.'"""
    from repro.net.tcp import TcpModel

    via = ViaModel(sk_cfg())
    tcp = TcpModel(sk_cfg(), TcpTuning(sockbuf_request=kb(512)))
    assert via.rate(BIG) == pytest.approx(tcp.rate(BIG), rel=0.1)


def test_hardware_via_needs_via_nic():
    with pytest.raises(ValueError):
        ViaModel(sk_cfg(), ViaFlavor.HARDWARE)


def test_software_via_needs_ethernet_nic():
    with pytest.raises(ValueError):
        ViaModel(clan_cfg(), ViaFlavor.SOFTWARE)


def test_hardware_rdma_at_least_descriptor_rate():
    m = ViaModel(clan_cfg())
    assert m.rdma_rate >= m.descriptor_rate
