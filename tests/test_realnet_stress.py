"""Seeded stress tests: MiniMP under randomised message sequences.

Deterministic pseudo-random traffic (no hypothesis here — real sockets
and threads want bounded, reproducible scenarios) exercising mixed
sizes, tags, eager/rendezvous boundaries and bidirectional traffic.
"""

import threading

import pytest

from repro.realnet import MiniMP, MiniMPConfig, connect_pair
from repro.units import kb


class Lcg:
    """Deterministic pseudo-random stream for reproducible stress runs."""

    def __init__(self, seed):
        self.state = seed * 2654435761 % 2**32 or 1

    def next(self, bound):
        self.state = (self.state * 1103515245 + 12345) % 2**31
        return self.state % bound


def make_pair(threshold=kb(8)):
    a, b = connect_pair()
    cfg = MiniMPConfig(eager_threshold=threshold)
    return MiniMP(a, cfg), MiniMP(b, cfg)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_mixed_size_sequence_across_threshold(seed):
    """A pseudo-random size sequence straddling the eager/rendezvous
    boundary arrives intact and in order."""
    rng = Lcg(seed)
    sizes = [1 + rng.next(kb(32)) for _ in range(40)]
    a, b = make_pair(threshold=kb(8))
    received = []

    def receiver():
        for size in sizes:
            received.append(b.recv(size))

    t = threading.Thread(target=receiver)
    t.start()
    try:
        for i, size in enumerate(sizes):
            a.send(bytes([i % 256]) * size)
        t.join(timeout=30)
        assert not t.is_alive()
        assert [len(p) for p in received] == sizes
        for i, payload in enumerate(received):
            assert payload == bytes([i % 256]) * sizes[i]
    finally:
        a.close()
        b.close()


@pytest.mark.parametrize("seed", [3, 11])
def test_bidirectional_interleaved_traffic(seed):
    """Both sides send simultaneously; eager traffic interleaving with
    the peer's receives must match by tag with nothing lost."""
    rng = Lcg(seed)
    n_msgs = 25
    sizes_ab = [1 + rng.next(kb(4)) for _ in range(n_msgs)]
    sizes_ba = [1 + rng.next(kb(4)) for _ in range(n_msgs)]
    a, b = make_pair(threshold=None)  # always eager: true full duplex
    got_at_b, got_at_a = [], []

    def side(mp, out_sizes, in_sizes, got):
        for i in range(n_msgs):
            mp.send(b"x" * out_sizes[i], tag=i)
        for i in range(n_msgs):
            got.append(mp.recv(in_sizes[i], tag=i))

    ta = threading.Thread(target=side, args=(a, sizes_ab, sizes_ba, got_at_a))
    tb = threading.Thread(target=side, args=(b, sizes_ba, sizes_ab, got_at_b))
    ta.start()
    tb.start()
    try:
        ta.join(timeout=30)
        tb.join(timeout=30)
        assert not ta.is_alive() and not tb.is_alive()
        assert [len(p) for p in got_at_b] == sizes_ab
        assert [len(p) for p in got_at_a] == sizes_ba
    finally:
        a.close()
        b.close()


def test_out_of_order_tags_heavy():
    """Receive in reverse tag order: everything staged, nothing lost."""
    a, b = make_pair(threshold=None)
    n = 30
    done = []

    def receiver():
        for tag in reversed(range(n)):
            done.append((tag, b.recv(64, tag=tag)))

    t = threading.Thread(target=receiver)
    t.start()
    try:
        for tag in range(n):
            a.send(bytes([tag]) * 64, tag=tag)
        t.join(timeout=30)
        assert not t.is_alive()
        assert [tag for tag, _ in done] == list(reversed(range(n)))
        for tag, payload in done:
            assert payload == bytes([tag]) * 64
        assert b.staging_copies >= n - 1  # all but the last staged
    finally:
        a.close()
        b.close()
