"""Documentation contract: every public item carries a docstring.

The deliverable says "doc comments on every public item"; this test
enforces it so the contract cannot silently rot.
"""

import importlib
import inspect
import pkgutil

import repro

IGNORED_MODULES = set()


def walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in IGNORED_MODULES:
            continue
        yield importlib.import_module(info.name)


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(obj):
            continue
        # Only report items defined in this package, not re-exports of
        # stdlib/numpy objects.
        defined_in = getattr(obj, "__module__", None)
        if not (defined_in or "").startswith("repro"):
            continue
        if defined_in != module.__name__:
            continue  # re-export; checked at its definition site
        yield name, obj


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in walk_modules() if not (m.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_has_a_docstring():
    missing = []
    for module in walk_modules():
        for name, obj in public_members(module):
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"public items without docstrings: {missing}"


def test_public_methods_documented_on_key_classes():
    from repro.cluster import Communicator
    from repro.core.results import NetPipeResult
    from repro.net.tcp import TcpModel
    from repro.sim import Engine

    missing = []
    for cls in (Engine, TcpModel, NetPipeResult, Communicator):
        for name, member in vars(cls).items():
            if name.startswith("_"):
                continue
            func = member.fget if isinstance(member, property) else member
            if callable(func) and not (getattr(func, "__doc__", "") or "").strip():
                missing.append(f"{cls.__name__}.{name}")
    assert not missing, f"undocumented methods: {missing}"
