"""Verify tier: product-state exploration semantics.

:func:`repro.verify.explore.run_pair` advances a (send path, recv
path) pair to its unique quiescent state; these tests pin its op
algebra on hand-built paths where the right answer is obvious:
completion, deadlock, fault-induced wedging, and the hop bound.
"""

import pytest

from repro.verify.explore import DROP, WireFault, run_pair
from repro.verify.model import Op

pytestmark = pytest.mark.verify


def _send(tag):
    return Op(kind="send", tag=tag, path="x.py", line=1, col=1)


def _recv(tag):
    return Op(kind="recv", tag=tag, path="x.py", line=2, col=1)


def _timeout():
    return Op(kind="timeout", tag=None, path="x.py", line=3, col=1)


RDV_SEND = (_send("rts"), _recv("cts"), _send("data"))
RDV_RECV = (_recv("rts"), _send("cts"), _recv("data"))


def test_clean_rendezvous_pair_completes():
    outcome = run_pair(RDV_SEND, RDV_RECV)
    assert outcome.completed
    assert outcome.blocked == (None, None)
    assert outcome.residual == ()
    assert outcome.hops == 6


def test_eager_pair_completes_with_timeouts_interleaved():
    outcome = run_pair(
        (_timeout(), _send("data")), (_recv("data"), _timeout())
    )
    assert outcome.completed


def test_missing_ack_leg_deadlocks_both_sides():
    recv_no_ack = (_recv("rts"), _recv("data"))
    outcome = run_pair(RDV_SEND, recv_no_ack)
    assert not outcome.completed
    blocked_send, blocked_recv = outcome.blocked
    assert blocked_send.tag == "cts"
    assert blocked_recv.tag == "data"


def test_dropped_cts_wedges_the_sender():
    fault = WireFault(side=1, tag="cts", occurrence=1, kind=DROP)
    outcome = run_pair(RDV_SEND, RDV_RECV, fault=fault)
    assert not outcome.completed
    assert outcome.dropped == ("cts",)
    assert outcome.blocked[0].tag == "cts"


def test_unconsumed_message_is_residual():
    outcome = run_pair((_send("data"), _send("extra")), (_recv("data"),))
    assert outcome.completed
    assert "extra" in outcome.residual


def test_hop_bound_flags_runaway_pairs():
    ping = tuple(
        op for _ in range(8) for op in (_send("data"), _recv("data"))
    )
    pong = tuple(
        op for _ in range(8) for op in (_recv("data"), _send("data"))
    )
    outcome = run_pair(ping, pong, hop_bound=4)
    assert outcome.hop_overflow
    assert outcome.hops >= 4


def test_wildcard_recv_matches_any_inflight_tag():
    outcome = run_pair(
        (_send("rts"),),
        (Op(kind="recv", tag=None, path="x.py", line=9, col=1),),
    )
    assert outcome.completed


def test_trace_names_both_sides():
    outcome = run_pair(RDV_SEND, RDV_RECV)
    rendered = outcome.render_trace()
    assert any(step.startswith("sender:") for step in rendered)
    assert any(step.startswith("receiver:") for step in rendered)
