# repro: module=repro.net.fixture_purity_bad
"""Known-bad purity fixture: real I/O in a simulation package."""

import socket
import subprocess
import threading


def connect(host):
    s = socket.socket()  # the import is flagged, not each use
    s.connect((host, 5000))
    return s


def shell(cmd):
    return subprocess.run(cmd)


def spawn(fn):
    t = threading.Thread(target=fn)
    t.start()
    return t


def slurp(path):
    with open(path) as fh:  # pure-open: builtin open()
        return fh.read()
