# repro: module=repro.net.fixture_dim_mbps_bad
"""Seeded mutant: the paper's '900 Mbps' digit pasted in raw.

Everything in repro is SI bytes per second; 900.0 here is the paper's
decimal-megabit figure and is off by a factor of 125000.  The name
says rate, the magnitude says Mbps, and there is no converter call —
``dim-unconverted`` exists precisely for this OCR-digit failure mode.
"""

# BUG (seeded): should be mbps(900.0) from repro.units.
LINK_BANDWIDTH = 900.0  # dim-unconverted: raw paper Mbps constant
