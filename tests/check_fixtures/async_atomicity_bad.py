# repro: module=repro.serve.fixture_atomic
"""Seeded mutant: a read-modify-write of shared state spans an await."""
import asyncio


class Stats:
    def __init__(self):
        self.total = 0

    async def _refresh(self):
        await asyncio.sleep(0)

    async def bump(self):
        seen = self.total
        await self._refresh()
        self.total = seen + 1  # BAD: another task may have bumped while parked
