# repro: module=repro.exec.fixture_fp_good
"""Complete fingerprint + benign plumbing; must stay at zero fp-* findings."""


def fingerprint(config, tuning):
    return ("v1", config, tuning)


def compute(config, tuning):
    return (config, tuning)


def warm(cache, config, tuning, retries=3):
    if retries:
        cache.try_put(fingerprint(config, tuning), compute(config, tuning))
    return retries
