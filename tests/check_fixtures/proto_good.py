# repro: module=repro.mplib.fixture_proto_good
"""Known-good twin: a correctly paired rendezvous/eager endpoint.

Every tag the active side awaits is sent by the passive side and vice
versa, the active side always sends before blocking, and the one
spec-conditioned branch (daemon routing) is reachable — the registry
universe contains daemon-routed PVM and LAM configurations.
"""

from repro.mplib.tcp_base import Route


class PairedEndpoint:
    """Eager/rendezvous protocol with matched RTS/CTS/DATA legs."""

    def __init__(self, spec, endpoint, engine):
        self.spec = spec
        self.ep = endpoint
        self.engine = engine

    def _is_rendezvous(self, nbytes):
        threshold = self.spec.eager_threshold
        return threshold is not None and nbytes >= threshold

    def send(self, nbytes):
        spec = self.spec
        if spec.route is Route.DAEMON:  # reachable: pvm-default, lam-lamd
            yield self.engine.timeout(spec.daemon_latency)
        if self._is_rendezvous(nbytes):
            yield from self.ep.send(spec.header_bytes, tag="rts")
            yield from self.ep.recv(tag="cts")
        yield from self.ep.send(nbytes + spec.header_bytes, tag="data")

    def recv(self, nbytes):
        if self._is_rendezvous(nbytes):
            yield from self.ep.recv(tag="rts")
            yield from self.ep.send(self.spec.header_bytes, tag="cts")
        msg = yield from self.ep.recv(tag="data")
        return msg
