# repro: module=repro.hw.fixture_cache_good
"""Known-good cache-safety fixture: every knob is a real field."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HonestTuning:
    sockbuf_request: int = 32768
    eager_threshold: int = 16384
    progress_stall: float = 0.000904
    sizes: tuple = field(default_factory=tuple)


class NotADataclass:
    # Plain classes are walked via __dict__; class attributes here are
    # out of the rule's (documented) scope.
    polling = True
