# repro: module=repro.sim.fixture_det_good
"""Known-good determinism fixture: simulated time only, no findings."""

import math


class FakeEngine:
    def __init__(self):
        self.now = 0.0

    def advance(self, delay):
        self.now += delay
        return self.now


def service_time(nbytes, rate):
    return nbytes / rate + math.exp(-1.0)


def run(engine, nbytes):
    engine.advance(service_time(nbytes, 125e6))
    return engine.now
