"""Known-good yield-discipline fixture: every generator is driven."""


def sender(ep, size):
    yield ep.send(size)
    return size


def pinger(engine, ep, size):
    yield from sender(ep, size)  # driven inline
    proc = engine.process(sender(ep, size))  # handed to the engine
    yield proc


def collect(ep, sizes):
    return [list(sender(ep, s)) for s in sizes]  # consumed, not discarded


class Endpoint:
    def _drain(self):
        yield self.channel.get()

    def close(self, engine):
        engine.process(self._drain())  # argument position: fine
        self.closed = True

    def log(self):
        self.describe()  # plain method call, not a generator

    def describe(self):
        return "endpoint"
