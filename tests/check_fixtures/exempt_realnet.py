# repro: module=repro.realnet.fixture
"""Policy-exemption fixture: realnet touches the real world by design."""

import socket
import time


def measure(host, port):
    t0 = time.perf_counter()
    s = socket.create_connection((host, port))
    s.close()
    return time.perf_counter() - t0
