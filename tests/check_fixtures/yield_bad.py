"""Known-bad yield-discipline fixture: discarded generator calls.

No module directive on purpose: yield-discipline is globally scoped,
so it must fire even for files outside the repro package tree.
"""


def sender(ep, size):
    yield ep.send(size)
    return size


def pinger(ep, size):
    sender(ep, size)  # yield-discard: generator created, never driven
    yield ep.recv(size)


class Endpoint:
    def _drain(self):
        yield self.channel.get()

    def close(self):
        self._drain()  # yield-discard: self-method generator discarded
        self.closed = True


def nested_scope(ep):
    def helper():
        yield ep.flush()

    helper()  # yield-discard: nested generator discarded
    return ep
