# repro: module=repro.exec.scheduler
"""Policy-exemption fixture: the scheduler times real sweeps."""

import os
import time


def wall_seconds(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def workers():
    return int(os.environ.get("REPRO_EXEC_WORKERS", "1"))
