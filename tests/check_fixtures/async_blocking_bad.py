# repro: module=repro.serve.fixture_blocking
"""Seeded mutant: blocking calls directly on the event loop."""
import time

from repro.exec.scheduler import execute_with_policy


async def slow_refresh(requests, policy):
    time.sleep(0.01)  # BAD: stalls every connected client
    return execute_with_policy(requests, policy)  # BAD: whole simulation on the loop
