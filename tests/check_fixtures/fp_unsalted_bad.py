# repro: module=repro.exec.fixture_unsalted
"""Seeded mutant: a tunable shapes the cached value but not its key."""


def fingerprint(config):
    return ("v1", config)


def compute(config, tuning):
    return (config, tuning)


def warm(cache, config, tuning):
    cache.put(fingerprint(config), compute(config, tuning))  # BAD: 'tuning' hidden
