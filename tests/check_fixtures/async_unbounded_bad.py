# repro: module=repro.serve.fixture_unbounded
"""Seeded mutant: an unbounded queue behind a public enqueue path."""
import asyncio


def build_queue():
    return asyncio.Queue()  # BAD: backpressure becomes memory growth
