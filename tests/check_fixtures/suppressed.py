# repro: module=repro.sim.fixture_suppressed
"""Suppression fixture: allow[] comments silence exactly their rule."""

import os
import time


def trailing():
    return time.time()  # repro: allow[det-wallclock] fixture: trailing form


def standalone():
    # repro: allow[det-env] fixture: standalone form, continued on a
    # second comment line, covering the next code line.
    return os.environ.get("REPRO_FIXTURE", "")


def wrong_rule_id():
    return time.time()  # repro: allow[pure-socket] does NOT match det-wallclock
