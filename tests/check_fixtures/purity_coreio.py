# repro: module=repro.core.io.fixture
"""The sanctioned serialization module may call open() (rule exemption)."""

import json


def load(path):
    with open(path) as fh:
        return json.load(fh)
