# repro: module=repro.exec.fixture_dead
"""Seeded mutant: a key field the value stopped depending on."""


def fingerprint(config, legacy):
    return ("v2", config, legacy)


def compute(config):
    return (config,)


def warm(cache, config, legacy):
    cache.put(fingerprint(config, legacy), compute(config))  # BAD: 'legacy' is dead salt
