# repro: module=repro.net.fixture_purity_good
"""Known-good purity fixture: models I/O without performing it.

Mentioning socket buffers in prose (or naming a variable ``sockbuf``)
must not trip the AST-based rules — only real imports and calls do.
"""


def effective_sockbuf(requested, maximum):
    """Clamp like setsockopt(SO_SNDBUF) would — no socket involved."""
    return min(requested, maximum)


def open_window(sockbuf, ack_rtt):
    # A local callable named ``open`` elsewhere would shadow the
    # builtin; here we simply never call file I/O.
    return sockbuf / ack_rtt
