# repro: module=repro.net.fixture_dim_mixed_bad
"""Seeded mutant: arithmetic across physical dimensions.

Adding a byte count to a seconds value is the classic transposition
slip when transcribing the paper's latency/bandwidth model; the result
is a wrong-but-plausible curve.  Both operands have *inferable*
dimensions (parameter names), so ``dim-mixed`` can prove the mismatch.
"""


def refill_stall(nbytes, progress_stall):
    """Mistranscribed: meant progress_stall + nbytes / bandwidth."""
    return progress_stall + nbytes  # dim-mixed: seconds + bytes
