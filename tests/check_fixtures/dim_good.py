# repro: module=repro.net.fixture_dim_good
"""Known-good twin: paper constants converted, algebra consistent.

The paper figures enter through :mod:`repro.units` converters, so the
constants are SI; every expression composes dimensions that agree
(seconds plus bytes-over-rate is seconds).
"""

from repro.units import mbps, us

LINK_BANDWIDTH = mbps(900.0)  # paper: 900 Mbps GigE wire rate
SETUP_LATENCY = us(58.0)  # paper: 58 us one-way latency


def transfer_time(nbytes):
    """First-principles latency/bandwidth transfer model."""
    return SETUP_LATENCY + nbytes / LINK_BANDWIDTH
