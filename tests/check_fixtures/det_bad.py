# repro: module=repro.sim.fixture_det_bad
"""Known-bad determinism fixture: every det-* rule fires once or more."""

import os
import random
import time as clock
import uuid
from datetime import datetime
from time import perf_counter


def start_stamp():
    return time_stamp()


def time_stamp():
    return clock.time()  # det-wallclock, aliased import


def precise():
    return perf_counter()  # det-wallclock, from-import


def born():
    return datetime.now()  # det-wallclock


def jitter():
    return random.random()  # det-random


def token():
    return uuid.uuid4()  # det-entropy


def noise():
    return os.urandom(8)  # det-entropy


def knob():
    return os.environ.get("REPRO_SECRET_KNOB", "0")  # det-env
