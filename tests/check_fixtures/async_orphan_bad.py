# repro: module=repro.serve.fixture_orphan
"""Seeded mutant: a spawned task with no owner and no exception sink."""
import asyncio


async def kick(worker):
    asyncio.create_task(worker())  # BAD: exception lost, task collectable
