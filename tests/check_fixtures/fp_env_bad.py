# repro: module=repro.exec.fixture_env
"""Seeded mutant: an env read on the compute side of the boundary."""
import os


def fingerprint(config):
    return ("v1", config)


def compute(config):
    return (config, os.environ.get("REPRO_FIXTURE_KNOB", ""))


def warm(cache, config):
    cache.put(fingerprint(config), compute(config))  # BAD: env invisible to key
