# repro: module=repro.serve.fixture_async_good
"""Mirrors the serve core's sanctioned idioms; must stay at zero
async-* findings: the coalescing-future probe returns before the
leader's writes, compute runs behind to_thread, the queue is bounded,
the task is parked on an attribute, cleanup writes constants."""
import asyncio


class Core:
    def __init__(self):
        self._inflight = {}
        self._computing = 0
        self._queue = asyncio.Queue(maxsize=8)
        self._task = None

    def _compute(self, spec):
        return spec

    async def answer(self, spec, key):
        waiter = self._inflight.get(key)
        if waiter is not None:
            return await waiter
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        self._computing += 1
        try:
            result = await asyncio.to_thread(self._compute, spec)
        finally:
            self._computing -= 1
            del self._inflight[key]
        future.set_result(result)
        return result

    def kick(self):
        self._task = asyncio.get_running_loop().create_task(self._drain())

    async def _drain(self):
        while True:
            item = await self._queue.get()
            if item is None:
                return

    async def aclose(self):
        if self._task is not None:
            self._task.cancel()
            await asyncio.sleep(0)
            self._task = None
