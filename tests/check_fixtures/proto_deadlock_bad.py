# repro: module=repro.mplib.fixture_proto_deadlock_bad
"""Seeded mutant: both protocol legs block on a receive first.

Every tag is perfectly paired (so ``proto-unmatched`` stays quiet),
but send() waits for a 'go' token that recv() only sends *after* its
own receive completes — with both ranks parked on a receive, neither
ever sends, and the simulated benchmark hangs.
"""


class DeadlockingEndpoint:
    """send() and recv() both open with a blocking channel receive."""

    def __init__(self, endpoint):
        self.ep = endpoint

    def send(self, nbytes):
        yield from self.ep.recv(tag="go")  # proto-deadlock: recv-first
        yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes):
        msg = yield from self.ep.recv(tag="data")
        yield from self.ep.send(0, tag="go")
        return msg
