# repro: module=repro.mplib.fixture_proto_deadbranch_bad
"""Seeded mutant: a protocol branch no registry spec can ever take.

``TcpLibSpec.__post_init__`` rejects negative ``header_bytes`` and
``OsBypassSpec`` defaults are non-negative too, so the guarded stall
below is dead code under every tuned and variant configuration in
:func:`repro.mplib.registry.iter_spec_universe`.  The handshake legs
themselves are fully paired and the active side sends first.
"""


class DeadBranchEndpoint:
    """Carries an unreachable spec-conditioned protocol branch."""

    def __init__(self, spec, endpoint, engine):
        self.spec = spec
        self.ep = endpoint
        self.engine = engine

    def send(self, nbytes):
        spec = self.spec
        if spec.header_bytes < 0:  # proto-dead-branch: never satisfiable
            yield self.engine.timeout(spec.latency_adder)
        yield from self.ep.send(spec.header_bytes, tag="rts")
        yield from self.ep.recv(tag="cts")
        yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes):
        yield from self.ep.recv(tag="rts")
        yield from self.ep.send(self.spec.header_bytes, tag="cts")
        msg = yield from self.ep.recv(tag="data")
        return msg
