# repro: module=repro.mplib.fixture_proto_unmatched_bad
"""Seeded mutant: rendezvous endpoint whose CTS reply leg was deleted.

The active side sends RTS and blocks on CTS; the passive side consumes
the RTS but never answers — exactly the handshake-pairing slip
``proto-unmatched`` exists to catch.  Nothing else is wrong: the
active side sends first (no deadlock) and there are no spec branches.
"""


class BrokenRendezvousEndpoint:
    """send() awaits a 'cts' that recv() never issues."""

    def __init__(self, spec, endpoint):
        self.spec = spec
        self.ep = endpoint

    def send(self, nbytes):
        yield from self.ep.send(self.spec.header_bytes, tag="rts")
        yield from self.ep.recv(tag="cts")  # proto-unmatched: no reply leg
        yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes):
        yield from self.ep.recv(tag="rts")
        # BUG (seeded): the CTS reply that belongs here was deleted.
        msg = yield from self.ep.recv(tag="data")
        return msg
