# repro: module=repro.hw.fixture_cache_bad
"""Known-bad cache-safety fixture: fields the fingerprint cannot see."""

from dataclasses import InitVar, dataclass
from typing import ClassVar


@dataclass(frozen=True)
class LeakyTuning:
    # A real field: fine.
    sockbuf_request: int = 32768
    # cache-classvar: dataclasses.fields() skips ClassVars entirely.
    eager_threshold: ClassVar[int] = 16384
    # cache-initvar: consumed in __post_init__, never stored or hashed.
    scale: InitVar[float] = 1.0
    # cache-classattr: unannotated, so a plain class attribute.
    progress_stall = 0.000904
