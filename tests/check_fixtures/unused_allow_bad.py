# repro: module=repro.sim.fixture_unused
"""Seeded mutant: a stale allow and an allow naming an unknown rule."""


def clean():  # repro: allow[det-wallclock] stale: nothing here touches the clock
    return 1


def also_clean():  # repro: allow[det-wallclok] typo'd rule id
    return 2
