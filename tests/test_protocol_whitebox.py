"""White-box protocol tests: the exact message sequences on the wire.

Behavioural tests elsewhere check timing; these check the *protocol* —
which control and data messages each library model actually emits, in
which order, with which tags.  A protocol regression (e.g. a rendezvous
that forgets its CTS) changes these sequences before it changes any
curve.
"""

import pytest

from repro.experiments import configs
from repro.mplib import Mpich, MpLite, Mvich, Pvm, RawTcp, Tcgmsg
from repro.net.channel import SimChannel
from repro.sim import Engine
from repro.units import kb

GA620 = configs.pc_netgear_ga620()
CLAN = configs.pc_giganet()


def wire_log(library, config, size):
    """Run one ping (A sends, B receives) and log delivered messages."""
    engine = Engine()
    a, b = library.build(engine, config)
    log = []

    # Wrap the channel's delivery to observe every message.
    channel = a.ep.channel if hasattr(a, "ep") else None
    assert channel is not None

    original_deliver = channel._deliver

    def spying_deliver(msg):
        log.append((msg.src, msg.tag, msg.size))
        return original_deliver(msg)

    channel._deliver = spying_deliver

    def sender():
        yield from a.send(size)

    def receiver():
        yield from b.recv(size)

    pa = engine.process(sender())
    pb = engine.process(receiver())
    engine.run(until=engine.all_of([pa, pb]))
    return log


def test_raw_tcp_is_one_bare_message():
    log = wire_log(RawTcp(), GA620, kb(4))
    assert log == [(0, "data", kb(4))]  # no header, no handshake


def test_mplite_adds_only_its_header():
    log = wire_log(MpLite(), GA620, kb(4))
    assert log == [(0, "data", kb(4) + 24)]


def test_tcgmsg_header_is_16_bytes():
    log = wire_log(Tcgmsg(), GA620, 100)
    assert log == [(0, "data", 116)]


def test_mpich_eager_below_cutoff():
    log = wire_log(Mpich.tuned(), GA620, kb(64))
    assert [tag for _, tag, _ in log] == ["data"]


def test_mpich_rendezvous_sequence_at_cutoff():
    """RTS (sender) -> CTS (receiver) -> data (sender)."""
    log = wire_log(Mpich.tuned(), GA620, kb(128))
    assert [(src, tag) for src, tag, _ in log] == [
        (0, "rts"),
        (1, "cts"),
        (0, "data"),
    ]
    # Control messages are header-sized; the body carries the payload.
    assert log[0][2] == 40 and log[1][2] == 40
    assert log[2][2] == kb(128) + 40


def test_pvm_direct_is_single_stream():
    log = wire_log(Pvm.tuned(), GA620, kb(64))
    assert [tag for _, tag, _ in log] == ["data"]


def test_mvich_rdma_handshake_above_via_long():
    log = wire_log(Mvich.tuned(), CLAN, kb(64))
    assert [tag for _, tag, _ in log] == ["rts", "cts", "data"]
    # The RDMA body is unpadded (zero-copy, no eager header).
    assert log[2][2] == kb(64)


def test_mvich_eager_below_via_long():
    log = wire_log(Mvich.tuned(), CLAN, kb(32))
    assert [tag for _, tag, _ in log] == ["data"]
    assert log[0][2] == kb(32) + 16  # eager header


def test_ping_pong_alternates_sources():
    engine = Engine()
    lib = MpLite()
    a, b = lib.build(engine, GA620)
    log = []
    channel = a.ep.channel
    original = channel._deliver

    def spy(msg):
        log.append(msg.src)
        return original(msg)

    channel._deliver = spy

    def ping():
        yield from a.send(100)
        yield from a.recv(100)

    def pong():
        yield from b.recv(100)
        yield from b.send(100)

    pa, pb = engine.process(ping()), engine.process(pong())
    engine.run(until=engine.all_of([pa, pb]))
    assert log == [0, 1]
