"""Two-tier switch topology: oversubscription effects."""

import pytest

from repro.apps.bisection import run_bisection
from repro.experiments import configs
from repro.fabric import Fabric, TwoTierTree
from repro.fabric.topology import Crossbar, TopologyPorts
from repro.mplib import MpLite, RawTcp
from repro.sim import Engine
from repro.units import MB, us


def make_fabric(nranks, topology=None):
    engine = Engine()
    link = RawTcp().link_model(configs.pc_netgear_ga620())
    return engine, Fabric(engine, link, nranks, topology=topology), link


def test_topology_validation():
    with pytest.raises(ValueError):
        TwoTierTree(leaf_size=0)
    with pytest.raises(ValueError):
        TwoTierTree(uplink_capacity=0)
    with pytest.raises(ValueError):
        TwoTierTree(uplink_latency=-1)


def test_leaf_assignment():
    t = TwoTierTree(leaf_size=4)
    assert [t.leaf_of(r) for r in (0, 3, 4, 7, 8)] == [0, 0, 1, 1, 2]


def test_crossing_detection():
    engine = Engine()
    ports = TopologyPorts(engine, TwoTierTree(leaf_size=4), nranks=8)
    assert ports.crossing(0, 3) is None  # same leaf
    assert ports.crossing(0, 4) is not None  # leaf 0 -> leaf 1


def test_intra_leaf_traffic_unaffected():
    engine, fabric, link = make_fabric(8, TwoTierTree(leaf_size=4))
    got = {}

    def sender():
        yield from fabric.send(0, 1, 1 * MB)

    def receiver():
        yield from fabric.recv(1)
        got["at"] = engine.now

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert got["at"] == pytest.approx(link.transfer_time(1 * MB))


def test_inter_leaf_adds_uplink_latency():
    topo = TwoTierTree(leaf_size=4, uplink_latency=us(10))
    engine, fabric, link = make_fabric(8, topo)
    got = {}

    def sender():
        yield from fabric.send(0, 4, 1 * MB)

    def receiver():
        yield from fabric.recv(4)
        got["at"] = engine.now

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert got["at"] == pytest.approx(link.transfer_time(1 * MB) + 2 * us(10))


def test_oversubscribed_uplink_serialises_inter_leaf_pairs():
    """Two leaf-0 senders to leaf 1 share the single uplink."""
    engine, fabric, link = make_fabric(8, TwoTierTree(leaf_size=4, uplink_capacity=1))
    arrivals = {}

    def sender(src, dst):
        yield from fabric.send(src, dst, 1 * MB)

    def receiver(dst):
        yield from fabric.recv(dst)
        arrivals[dst] = engine.now

    engine.process(sender(0, 4))
    engine.process(sender(1, 5))
    engine.process(receiver(4))
    engine.process(receiver(5))
    engine.run()
    first, second = sorted(arrivals.values())
    assert second >= first + link.occupancy(1 * MB) * 0.99


def test_full_uplink_capacity_restores_parallelism():
    engine, fabric, link = make_fabric(8, TwoTierTree(leaf_size=4, uplink_capacity=4))
    arrivals = {}

    def sender(src, dst):
        yield from fabric.send(src, dst, 1 * MB)

    def receiver(dst):
        yield from fabric.recv(dst)
        arrivals[dst] = engine.now

    engine.process(sender(0, 4))
    engine.process(sender(1, 5))
    engine.process(receiver(4))
    engine.process(receiver(5))
    engine.run()
    for t in arrivals.values():
        assert t == pytest.approx(link.transfer_time(1 * MB), rel=0.01)


def test_bisection_collapses_under_oversubscription():
    """The cascaded-switch cluster: 8 ranks over two 4-port leaves with
    one uplink — bisection throughput drops toward one pair's worth."""
    from repro.cluster.communicator import build_world, run_ranks

    def measure(topology):
        def program(comm):
            partner = (comm.rank + 4) % 8
            yield from comm.barrier()
            t0 = comm.engine.now
            yield from comm.sendrecv(partner, 1 * MB, partner, 1 * MB)
            return comm.engine.now - t0

        engine = Engine()
        comms = build_world(
            engine, MpLite(), configs.pc_netgear_ga620(), 8, topology=topology
        )
        return max(run_ranks(engine, comms, program))

    crossbar_time = measure(None)
    oversub_time = measure(TwoTierTree(leaf_size=4, uplink_capacity=1))
    # All four pairs cross the bisection: with one uplink each way they
    # serialise ~4x.
    assert oversub_time > 3.0 * crossbar_time
