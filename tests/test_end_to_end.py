"""Capstone: the paper's Sec. 8 conclusions, verified end to end.

Each assertion is one sentence of the paper's Conclusions section,
checked against freshly simulated data across all five figures.
"""

import time

from repro.analysis import fraction_of_raw
from repro.core import netpipe_sizes
from repro.experiments import ALL_FIGURES, FIG1, FIG_UNTUNED
from repro.units import MB


def test_conclusion_libraries_pass_on_most_of_the_performance():
    """'Overall, the message-passing libraries pass on most or all of
    the performance that the underlying communication layer offers.'"""
    results = FIG1.run()
    fracs = fraction_of_raw(results, "raw TCP")
    # Tuned, on good hardware: everyone delivers at least ~70%, and
    # most are within a few percent.
    assert all(f > 0.70 for f in fracs.values()), fracs
    assert sum(f > 0.95 for f in fracs.values()) >= 4


def test_conclusion_deficiencies_are_mostly_socket_buffers():
    """'Most of the deficiencies could be easily corrected by simply
    increasing the socket buffer sizes.'  Formally: every library that
    plateaus below 80% of raw TCP on the TrendNet cards is
    window-limited, and giving the same protocol big buffers recovers
    the loss (shown by MPICH, whose buffer IS tunable)."""
    from repro.experiments import FIG2

    results = FIG2.run()
    raw = results["raw TCP"].plateau_mbps
    # MPICH, with its tunable P4_SOCKBUFSIZE, escapes the plateau that
    # traps LAM, MPI/Pro, PVM and TCGMSG.
    stuck = [
        label
        for label, r in results.items()
        if label not in ("raw TCP", "MP_Lite", "MPICH")
    ]
    for label in stuck:
        assert results[label].plateau_mbps < 0.6 * raw, label
    assert results["MPICH"].plateau_mbps > 0.6 * raw


def test_conclusion_tuning_is_worth_up_to_5x():
    """'tuning a few simple parameters can increase the communication
    performance by as much as a factor of 5.'"""
    untuned = FIG_UNTUNED.run()
    tuned = FIG1.run()
    gains = [
        tuned[label].plateau_mbps / untuned[label].plateau_mbps
        for label in untuned
    ]
    assert max(gains) > 4.5  # MPICH's P4_SOCKBUFSIZE factor
    assert any(3.0 < g < 4.6 for g in gains)  # PVM's routing staircase


def test_conclusion_custom_hardware_does_deliver_more():
    """'Custom hardware, while expensive, does provide better
    performance than Gigabit Ethernet.'"""
    from repro.experiments import FIG4, FIG5

    fig4 = FIG4.run()
    assert fig4["raw GM"].max_mbps > 1.3 * fig4["TCP - GE"].max_mbps
    assert fig4["raw GM"].latency_us < 0.2 * fig4["TCP - GE"].latency_us
    fig5 = FIG5.run()
    assert fig5["MVICH"].latency_us < 12  # Giganet's 10 us class


def test_conclusion_every_figure_audits_clean():
    """The whole reproduction in one line: 37 figure anchors pass."""
    rows = [row for fig in ALL_FIGURES for row in fig.audit()]
    assert len(rows) >= 35
    assert all(row.ok for row in rows)


def test_performance_guard_full_sweep_stays_fast():
    """The simulator must stay interactive: one full seven-library
    figure-1 sweep (1 B - 8 MB) in well under a few seconds."""
    t0 = time.perf_counter()
    FIG1.run(sizes=netpipe_sizes(stop=8 * MB))
    elapsed = time.perf_counter() - t0
    assert elapsed < 5.0, f"figure 1 took {elapsed:.1f}s"
