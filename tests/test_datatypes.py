"""Derived-datatype cost model and its communicator integration."""

import pytest

from repro.cluster import build_world, run_ranks
from repro.experiments import configs
from repro.hw.catalog import PENTIUM4_PC
from repro.mplib import Mpich, MpiPro, MpLite
from repro.mplib.datatypes import (
    STRIDED_BLOCK_OVERHEAD,
    Contiguous,
    DatatypeSupport,
    Layout,
    Strided,
    exposed_pack_time,
    support_for,
)
from repro.sim import Engine
from repro.units import kb

CFG = configs.pc_netgear_ga620()


# -- layouts --------------------------------------------------------------------
def test_contiguous_has_no_pack_cost():
    c = Contiguous(kb(64))
    assert c.nbytes == kb(64)
    assert c.pack_time(PENTIUM4_PC) == 0.0


def test_strided_nbytes():
    s = Strided(count=256, blocklen=8, stride=2048)
    assert s.nbytes == 2048


def test_strided_pack_cost_exceeds_memcpy():
    s = Strided(count=1024, blocklen=8, stride=2048)
    plain = s.nbytes / PENTIUM4_PC.memcpy_bandwidth
    assert s.pack_time(PENTIUM4_PC) == pytest.approx(
        plain + 1024 * STRIDED_BLOCK_OVERHEAD
    )


def test_fine_strides_cost_more_per_byte():
    fine = Strided(count=8192, blocklen=8, stride=1024)  # 64 KB, 8 B blocks
    coarse = Strided(count=64, blocklen=1024, stride=2048)  # 64 KB, 1 KB blocks
    assert fine.nbytes == coarse.nbytes
    assert fine.pack_time(PENTIUM4_PC) > 2 * coarse.pack_time(PENTIUM4_PC)


def test_strided_validation():
    with pytest.raises(ValueError):
        Strided(count=0, blocklen=8, stride=16)
    with pytest.raises(ValueError):
        Strided(count=4, blocklen=32, stride=16)
    with pytest.raises(ValueError):
        Contiguous(-1)


# -- support mapping ------------------------------------------------------------------
def test_paper_support_levels():
    assert support_for("MP_Lite") is DatatypeSupport.USER_PACK
    assert support_for("TCGMSG") is DatatypeSupport.USER_PACK
    assert support_for("MPICH") is DatatypeSupport.LIBRARY_PACK
    assert support_for("MPI/Pro") is DatatypeSupport.PIPELINED_PACK
    assert support_for("PVM (PvmRouteDirect, PvmDataInPlace)") \
        is DatatypeSupport.LIBRARY_PACK


def test_unknown_library_defaults_to_user_pack():
    assert support_for("Frobnicator-MPI") is DatatypeSupport.USER_PACK


def test_pipelined_pack_exposes_only_a_chunk():
    s = Strided(count=16384, blocklen=8, stride=1024)  # 128 KB
    full = exposed_pack_time(s, PENTIUM4_PC, DatatypeSupport.LIBRARY_PACK)
    piped = exposed_pack_time(s, PENTIUM4_PC, DatatypeSupport.PIPELINED_PACK)
    assert piped < 0.2 * full
    assert exposed_pack_time(s, PENTIUM4_PC, DatatypeSupport.USER_PACK) == full


def test_contiguous_exposes_nothing():
    c = Contiguous(kb(256))
    for support in DatatypeSupport:
        assert exposed_pack_time(c, PENTIUM4_PC, support) == 0.0


# -- communicator integration ----------------------------------------------------------
def exchange_program(layout):
    def program(comm):
        t0 = comm.engine.now
        if comm.rank == 0:
            yield from comm.send_layout(1, layout)
        else:
            yield from comm.recv_layout(0, layout)
        return comm.engine.now - t0

    return program


def run_pair(library, layout):
    engine = Engine()
    comms = build_world(engine, library, CFG, 2)
    times = run_ranks(engine, comms, exchange_program(layout))
    return max(t for t in times if t is not None), comms


def test_strided_send_slower_than_contiguous():
    strided = Strided(count=16384, blocklen=8, stride=2048)  # 128 KB column
    contig = Contiguous(strided.nbytes)
    t_strided, _ = run_pair(MpLite(), strided)
    t_contig, _ = run_pair(MpLite(), contig)
    assert t_strided > t_contig * 1.2


def test_pipelined_library_hides_most_of_the_pack():
    strided = Strided(count=16384, blocklen=8, stride=2048)
    t_pro, _ = run_pair(MpiPro.tuned(), strided)
    t_contig_pro, _ = run_pair(MpiPro.tuned(), Contiguous(strided.nbytes))
    # MPI/Pro's pipelined pack exposes a fraction of what a full
    # gather pass would add.
    full_pack = strided.pack_time(PENTIUM4_PC)
    assert t_pro - t_contig_pro < 0.4 * (2 * full_pack)


def test_user_pack_counts_as_application_compute():
    strided = Strided(count=8192, blocklen=8, stride=2048)
    _, comms = run_pair(MpLite(), strided)
    assert comms[0].compute_time > 0  # sender packed "by hand"
    _, comms_mpich = run_pair(Mpich.tuned(), strided)
    assert comms_mpich[0].compute_time == 0  # the library did it
