"""Sweep fingerprints and the content-addressed cache."""

import pytest

from repro.core import run_netpipe
from repro.exec import SweepCache, SweepRequest, canonicalize, sweep_fingerprint
from repro.experiments import configs
from repro.hw.cluster import DEFAULT_SYSCTL
from repro.mplib import Mpich, RawTcp
from repro.mplib.mpich import MpichParams
from repro.units import kb

CFG = configs.pc_netgear_ga620()
SIZES = (1, 64, 1024, 65536)

pytestmark = pytest.mark.exec_smoke


# -- fingerprints -----------------------------------------------------------

def test_fingerprint_is_stable():
    a = sweep_fingerprint(Mpich.tuned(), CFG, SIZES, repeats=2)
    b = sweep_fingerprint(Mpich.tuned(), CFG, SIZES, repeats=2)
    assert a == b
    assert len(a) == 64 and int(a, 16) >= 0  # sha256 hex


def test_fingerprint_changes_on_library_params():
    base = sweep_fingerprint(Mpich.tuned(), CFG, SIZES)
    other = sweep_fingerprint(Mpich.tuned(sockbuf=kb(512)), CFG, SIZES)
    assert base != other
    rebuilt = sweep_fingerprint(
        Mpich(MpichParams(p4_sockbufsize=kb(256))), CFG, SIZES
    )
    assert rebuilt == base  # same parameters spelt differently


def test_fingerprint_changes_on_config():
    base = sweep_fingerprint(RawTcp(), CFG, SIZES)
    assert base != sweep_fingerprint(RawTcp(), CFG.with_mtu(9000), SIZES)
    assert base != sweep_fingerprint(RawTcp(), CFG.with_sysctl(DEFAULT_SYSCTL), SIZES)


def test_fingerprint_changes_on_sizes_and_repeats():
    base = sweep_fingerprint(RawTcp(), CFG, SIZES, repeats=1)
    assert base != sweep_fingerprint(RawTcp(), CFG, SIZES + (131072,), repeats=1)
    assert base != sweep_fingerprint(RawTcp(), CFG, SIZES, repeats=2)
    assert base != sweep_fingerprint(RawTcp(), CFG, SIZES, salt="study-2")


def test_fingerprint_distinguishes_library_classes():
    """Two models with identical parameter dicts must not collide."""
    assert sweep_fingerprint(RawTcp(), CFG, SIZES) != sweep_fingerprint(
        Mpich.tuned(), CFG, SIZES
    )


def test_default_schedule_expands():
    from repro.core.sizes import netpipe_sizes

    implicit = sweep_fingerprint(RawTcp(), CFG, None)
    explicit = sweep_fingerprint(RawTcp(), CFG, netpipe_sizes())
    assert implicit == explicit


def test_canonicalize_rejects_unstable_values():
    with pytest.raises(TypeError):
        canonicalize(lambda: None)


# -- cache ------------------------------------------------------------------

def test_cache_hit_returns_bit_identical_result(tmp_path):
    cache = SweepCache(tmp_path)
    request = SweepRequest("raw TCP", RawTcp(), CFG, sizes=SIZES)
    fp = request.fingerprint()
    fresh = run_netpipe(RawTcp(), CFG, sizes=SIZES)

    assert cache.get(fp) is None  # cold
    cache.put(fp, fresh)
    hit = cache.get(fp)
    assert hit is not None
    assert [(p.size, p.oneway_time) for p in hit.points] == [
        (p.size, p.oneway_time) for p in fresh.points
    ]
    assert hit.library == fresh.library and hit.config == fresh.config
    assert cache.hits == 1 and cache.misses == 1


def test_cache_layout_fans_out_by_prefix(tmp_path):
    cache = SweepCache(tmp_path)
    fp = SweepRequest("x", RawTcp(), CFG, sizes=SIZES).fingerprint()
    path = cache.put(fp, run_netpipe(RawTcp(), CFG, sizes=SIZES))
    assert path == tmp_path / fp[:2] / f"{fp}.json"
    assert path.exists()
    assert len(cache) == 1


def test_corrupt_cache_file_is_a_miss(tmp_path):
    cache = SweepCache(tmp_path)
    fp = SweepRequest("x", RawTcp(), CFG, sizes=SIZES).fingerprint()
    result = run_netpipe(RawTcp(), CFG, sizes=SIZES)
    path = cache.put(fp, result)

    # Truncation (the failure mode atomic writes prevent upstream).
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    assert cache.get(fp) is None
    assert cache.corrupt == 1

    # Valid JSON, wrong document type.
    path.write_text('{"format": "something-else"}')
    assert cache.get(fp) is None
    assert cache.corrupt == 2

    # put() repairs the slot.
    cache.put(fp, result)
    assert cache.get(fp) is not None


def test_invalidate_and_clear(tmp_path):
    cache = SweepCache(tmp_path)
    fps = []
    for lib in (RawTcp(), Mpich.tuned()):
        fp = SweepRequest(lib.display_name, lib, CFG, sizes=SIZES).fingerprint()
        cache.put(fp, run_netpipe(lib, CFG, sizes=SIZES))
        fps.append(fp)
    assert len(cache) == 2
    assert cache.invalidate(fps[0]) is True
    assert cache.invalidate(fps[0]) is False
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


# -- flat-layout migration --------------------------------------------------

def _flat_entry(cache, lib=None):
    """Plant one entry in the legacy flat layout; returns (fp, result)."""
    lib = lib if lib is not None else RawTcp()
    fp = SweepRequest(lib.display_name, lib, CFG, sizes=SIZES).fingerprint()
    result = run_netpipe(lib, CFG, sizes=SIZES)
    from repro.core.io import save_result

    save_result(result, cache.flat_path_for(fp))
    return fp, result


def test_flat_entry_is_a_hit_and_promotes_into_its_shard(tmp_path):
    cache = SweepCache(tmp_path)
    fp, result = _flat_entry(cache)
    assert cache.shard_counts() == {"": 1}

    hit = cache.get(fp)  # read through the migration shim
    assert hit is not None
    assert [(p.size, p.oneway_time) for p in hit.points] == [
        (p.size, p.oneway_time) for p in result.points
    ]
    assert cache.hits == 1 and cache.migrated == 1
    assert cache.path_for(fp).exists()
    assert not cache.flat_path_for(fp).exists()
    assert cache.shard_counts() == {fp[:2]: 1}
    # Subsequent reads take the sharded fast path.
    assert cache.get(fp) is not None and cache.migrated == 1


def test_sharded_entry_shadows_a_stale_flat_one(tmp_path):
    """When both layouts hold the fingerprint, the sharded entry wins
    and the flat file is left alone (content addressing makes them
    identical in practice; precedence must still be deterministic)."""
    cache = SweepCache(tmp_path)
    fp, result = _flat_entry(cache)
    cache.put(fp, result)  # sharded copy too
    assert cache.get(fp) is not None
    assert cache.migrated == 0  # no promotion was needed
    assert cache.flat_path_for(fp).exists()
    assert len(cache) == 2  # both counted until housekeeping
    assert cache.invalidate(fp) is True  # drops both layouts
    assert len(cache) == 0


def test_migrate_flat_bulk_promotion(tmp_path):
    cache = SweepCache(tmp_path)
    fps = []
    for lib in (RawTcp(), Mpich.tuned()):
        fp, _ = _flat_entry(cache, lib)
        fps.append(fp)
    assert cache.shard_counts() == {"": 2}

    assert cache.migrate_flat() == 2
    assert cache.migrated == 2
    counts = cache.shard_counts()
    assert "" not in counts and sum(counts.values()) == 2
    for fp in fps:
        assert cache.path_for(fp).exists()
        assert cache.get(fp) is not None
    assert cache.migrate_flat() == 0  # idempotent


def test_corrupt_flat_entry_is_a_miss_not_a_migration(tmp_path):
    cache = SweepCache(tmp_path)
    fp, _ = _flat_entry(cache)
    cache.flat_path_for(fp).write_text("{not json")
    assert cache.get(fp) is None
    assert cache.corrupt == 1 and cache.migrated == 0
    assert cache.flat_path_for(fp).exists()  # left for inspection


def test_clear_and_len_cover_both_layouts(tmp_path):
    cache = SweepCache(tmp_path)
    flat_fp, result = _flat_entry(cache)
    other = SweepRequest("m", Mpich.tuned(), CFG, sizes=SIZES).fingerprint()
    cache.put(other, run_netpipe(Mpich.tuned(), CFG, sizes=SIZES))
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.shard_counts() == {}


def test_from_env(tmp_path, monkeypatch):
    from repro.exec.cache import CACHE_DIR_ENV

    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert SweepCache.from_env() is None
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "sweeps"))
    cache = SweepCache.from_env()
    assert cache is not None and cache.root == tmp_path / "sweeps"
