"""Hardware model tests: PCI, hosts, NICs, cluster configs."""

import pytest

from repro.hw import PCI_32_33, PCI_64_33, ClusterConfig, HostModel, NicModel, PciBus, SysctlConfig
from repro.hw.catalog import (
    ALL_HOSTS,
    ALL_NICS,
    COMPAQ_DS20,
    GIGANET_CLAN,
    MYRINET_PCI64A,
    NETGEAR_GA620,
    NETGEAR_GA622,
    PENTIUM4_PC,
    SYSKONNECT_SK9843,
    TRENDNET_TEG_PCITX,
)
from repro.hw.cluster import DEFAULT_SYSCTL, TUNED_SYSCTL
from repro.units import kb, to_mbps, us


# -- PCI -----------------------------------------------------------------------
def test_pci_theoretical_bandwidth():
    assert PCI_32_33.theoretical_bandwidth == pytest.approx(4 * 33.33e6)
    assert PCI_64_33.theoretical_bandwidth == pytest.approx(8 * 33.33e6)


def test_pci_64_is_twice_32():
    assert PCI_64_33.bandwidth == pytest.approx(2 * PCI_32_33.bandwidth)


def test_pci_rejects_bad_width():
    with pytest.raises(ValueError):
        PciBus(width_bits=16, clock_mhz=33)


def test_pci_rejects_bad_efficiency():
    with pytest.raises(ValueError):
        PciBus(width_bits=32, clock_mhz=33, efficiency=1.5)


def test_pci_32bit_caps_syskonnect_near_710_mbps():
    # The paper: "the 32-bit PCI bus limits the bandwidth of these
    # SysKonnect cards to a maximum of 710 Mbps".
    assert to_mbps(PCI_32_33.bandwidth) == pytest.approx(714, abs=10)


# -- Host ------------------------------------------------------------------------
def test_host_copy_time_scales_linearly():
    t1 = PENTIUM4_PC.copy_time(1_000_000)
    t2 = PENTIUM4_PC.copy_time(2_000_000)
    assert t2 == pytest.approx(2 * t1)


def test_host_copy_time_rejects_negative():
    with pytest.raises(ValueError):
        PENTIUM4_PC.copy_time(-1)


def test_ds20_memory_faster_than_pc():
    assert COMPAQ_DS20.memcpy_bandwidth > PENTIUM4_PC.memcpy_bandwidth


def test_host_validation():
    with pytest.raises(ValueError):
        HostModel(
            name="bad",
            cpu_ghz=1.0,
            memcpy_bandwidth=-1,
            syscall_time=0,
            interrupt_time=0,
            sched_wakeup_time=0,
            pci=PCI_32_33,
        )


# -- NIC --------------------------------------------------------------------------
def test_catalog_has_all_six_paper_nics():
    names = {n.name for n in ALL_NICS}
    assert len(ALL_NICS) == 6
    assert any("TrendNet" in n for n in names)
    assert any("GA622" in n for n in names)
    assert any("GA620" in n for n in names)
    assert any("SysKonnect" in n for n in names)
    assert any("Myrinet" in n for n in names)
    assert any("Giganet" in n or "cLAN" in n for n in names)


def test_paper_prices():
    assert TRENDNET_TEG_PCITX.price_usd == 55
    assert NETGEAR_GA622.price_usd == 90
    assert NETGEAR_GA620.price_usd == 220
    assert SYSKONNECT_SK9843.price_usd == 565


def test_jumbo_capability():
    assert SYSKONNECT_SK9843.supports_jumbo
    assert not TRENDNET_TEG_PCITX.supports_jumbo


def test_trendnet_is_32bit_only():
    assert not TRENDNET_TEG_PCITX.pci_64bit_capable
    assert NETGEAR_GA622.pci_64bit_capable  # the 64-bit twin


def test_nic_validation_rejects_default_mtu_above_max():
    with pytest.raises(ValueError):
        NicModel(
            name="bad",
            kind=TRENDNET_TEG_PCITX.kind,
            link_rate=1e8,
            driver="x",
            media="copper",
            price_usd=1,
            mtu_default=9000,
            mtu_max=1500,
            pci_64bit_capable=False,
            tx_per_packet_time=0,
            rx_per_packet_time=0,
            wire_latency=0,
            ack_rtt=0,
        )


def test_nic_describe_mentions_driver_and_price():
    text = SYSKONNECT_SK9843.describe()
    assert "sk98lin" in text and "565" in text


# -- Sysctl ------------------------------------------------------------------------
def test_sysctl_default_when_no_request():
    assert DEFAULT_SYSCTL.effective_bufsize(None) == kb(32)


def test_sysctl_clamps_to_maximum():
    assert DEFAULT_SYSCTL.effective_bufsize(kb(512)) == kb(32)
    assert TUNED_SYSCTL.effective_bufsize(kb(512)) == kb(512)


def test_sysctl_passes_small_requests_through():
    assert TUNED_SYSCTL.effective_bufsize(kb(8)) == kb(8)


def test_sysctl_rejects_nonpositive_request():
    with pytest.raises(ValueError):
        DEFAULT_SYSCTL.effective_bufsize(0)


def test_sysctl_validates_default_le_maximum():
    with pytest.raises(ValueError):
        SysctlConfig(default=kb(128), maximum=kb(64))


# -- ClusterConfig -------------------------------------------------------------------
def test_cluster_effective_mtu_defaults_to_nic():
    cfg = ClusterConfig(PENTIUM4_PC, NETGEAR_GA620)
    assert cfg.effective_mtu == 1500


def test_cluster_rejects_mtu_above_nic_max():
    with pytest.raises(ValueError):
        ClusterConfig(PENTIUM4_PC, TRENDNET_TEG_PCITX, mtu=9000)


def test_cluster_jumbo_allowed_on_syskonnect():
    cfg = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000)
    assert cfg.effective_mtu == 9000


def test_pci_bandwidth_32bit_card_in_64bit_slot():
    # TrendNet twin GA622 uses all 64 bits on the DS20; TrendNet itself
    # would be stuck at 32.
    cfg622 = ClusterConfig(COMPAQ_DS20, NETGEAR_GA622)
    cfg_tn = ClusterConfig(COMPAQ_DS20, TRENDNET_TEG_PCITX)
    assert cfg622.pci_bandwidth == pytest.approx(2 * cfg_tn.pci_bandwidth)


def test_os_bypass_nics_extract_more_pci():
    eth = ClusterConfig(PENTIUM4_PC, SYSKONNECT_SK9843)
    gm = ClusterConfig(PENTIUM4_PC, MYRINET_PCI64A)
    assert gm.pci_bandwidth > eth.pci_bandwidth


def test_switch_latency_only_when_switched():
    b2b = ClusterConfig(PENTIUM4_PC, GIGANET_CLAN)
    sw = ClusterConfig(PENTIUM4_PC, GIGANET_CLAN, back_to_back=False)
    assert b2b.path_latency_extra == 0.0
    assert sw.path_latency_extra == pytest.approx(us(1.0))


def test_with_sysctl_returns_modified_copy():
    cfg = ClusterConfig(PENTIUM4_PC, NETGEAR_GA620)
    tuned = cfg.with_sysctl(TUNED_SYSCTL)
    assert tuned.sysctl is TUNED_SYSCTL
    assert cfg.sysctl is DEFAULT_SYSCTL  # original untouched


def test_describe_mentions_nic_and_buffers():
    cfg = ClusterConfig(PENTIUM4_PC, NETGEAR_GA620, sysctl=TUNED_SYSCTL)
    text = cfg.describe()
    assert "GA620" in text and "512 KB" in text


def test_all_hosts_in_catalog():
    assert len(ALL_HOSTS) == 2


# -- Fast Ethernet (Sec. 4's reference point) ------------------------------------
def test_fast_ethernet_saturates_with_default_buffers():
    """'You cannot just slap in a Gigabit Ethernet card and expect ...
    decent performance like you can with more established Fast
    Ethernet' — at 100 Mb/s the default buffers are already enough."""
    from repro.core import run_netpipe
    from repro.hw.catalog import INTEL_EEPRO100
    from repro.mplib import RawTcp

    untuned = run_netpipe(
        RawTcp.untuned(), ClusterConfig(PENTIUM4_PC, INTEL_EEPRO100)
    )
    tuned = run_netpipe(
        RawTcp(), ClusterConfig(PENTIUM4_PC, INTEL_EEPRO100, sysctl=TUNED_SYSCTL)
    )
    # ~94 Mb/s is the framing-limited ceiling of Fast Ethernet.
    assert untuned.plateau_mbps > 90
    assert tuned.plateau_mbps / untuned.plateau_mbps < 1.05  # tuning moot


def test_fast_ethernet_vs_gige_untuned_paradox():
    """Untuned, a $55 GigE card beats Fast Ethernet by only ~3x, not
    the 10x the wire promises — the paper's motivation in one number."""
    from repro.core import run_netpipe
    from repro.hw.catalog import INTEL_EEPRO100, TRENDNET_TEG_PCITX
    from repro.mplib import RawTcp

    fe = run_netpipe(RawTcp.untuned(), ClusterConfig(PENTIUM4_PC, INTEL_EEPRO100))
    ge = run_netpipe(
        RawTcp.untuned(), ClusterConfig(PENTIUM4_PC, TRENDNET_TEG_PCITX)
    )
    assert 2.0 < ge.plateau_mbps / fe.plateau_mbps < 4.0
