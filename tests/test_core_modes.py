"""Streaming (-s) and bidirectional (-2) NetPIPE measurement modes."""

import pytest

from repro.core import measure_bidirectional, measure_pingpong, measure_streaming
from repro.experiments import configs
from repro.mplib import Mpich, MpLite, RawTcp
from repro.sim import Engine
from repro.units import MB, kb, to_mbps

CFG = configs.pc_netgear_ga620()


def build(lib):
    engine = Engine()
    a, b = lib.build(engine, CFG)
    return engine, a, b


def test_streaming_reaches_link_plateau():
    engine, a, b = build(RawTcp())
    rate = measure_streaming(engine, a, b, 1 * MB)
    assert to_mbps(rate) == pytest.approx(550, rel=0.05)


def test_streaming_beats_pingpong_for_small_messages():
    """Streaming amortises latency over the burst; ping-pong pays the
    full round trip per message."""
    engine, a, b = build(RawTcp())
    stream = measure_streaming(engine, a, b, kb(4), burst=32)
    engine2, a2, b2 = build(RawTcp())
    oneway = measure_pingpong(engine2, a2, b2, kb(4))
    pingpong_rate = kb(4) / oneway
    assert stream > 1.5 * pingpong_rate


def test_streaming_rendezvous_library_serialises():
    """MPICH's rendezvous handshake forces a round trip per message, so
    its large-message streaming gains are capped."""
    engine, a, b = build(Mpich.tuned())
    stream = measure_streaming(engine, a, b, kb(256), burst=8)
    engine2, a2, b2 = build(RawTcp())
    raw = measure_streaming(engine2, a2, b2, kb(256), burst=8)
    assert stream < raw


def test_streaming_validation():
    engine, a, b = build(RawTcp())
    with pytest.raises(ValueError):
        measure_streaming(engine, a, b, kb(4), burst=0)


def test_bidirectional_uses_full_duplex():
    engine, a, b = build(MpLite())
    bidir = measure_bidirectional(engine, a, b, 1 * MB)
    engine2, a2, b2 = build(MpLite())
    stream = measure_streaming(engine2, a2, b2, 1 * MB)
    # Aggregate bidirectional throughput approaches 2x one direction.
    assert bidir > 1.7 * stream


def test_bidirectional_validation():
    engine, a, b = build(RawTcp())
    with pytest.raises(ValueError):
        measure_bidirectional(engine, a, b, kb(4), repeats=0)


def test_modes_deterministic():
    vals = set()
    for _ in range(2):
        engine, a, b = build(RawTcp())
        vals.add(measure_streaming(engine, a, b, kb(64)))
    assert len(vals) == 1
