"""Synthetic traffic patterns on the fabric."""

import pytest

from repro.apps import Pattern, generate_destinations, run_pattern
from repro.experiments import configs
from repro.mplib import MpLite

GA620 = configs.pc_netgear_ga620()


def test_generation_is_deterministic():
    a = generate_destinations(Pattern.UNIFORM, 8, 16, seed=7)
    b = generate_destinations(Pattern.UNIFORM, 8, 16, seed=7)
    assert a == b


def test_different_seeds_differ():
    a = generate_destinations(Pattern.UNIFORM, 8, 16, seed=1)
    b = generate_destinations(Pattern.UNIFORM, 8, 16, seed=2)
    assert a != b


def test_no_self_sends_in_any_pattern():
    for pattern in Pattern:
        dests = generate_destinations(pattern, 7, 12, seed=3)
        for src, dsts in dests.items():
            assert all(d != src for d in dsts), pattern
            assert all(0 <= d < 7 for d in dsts), pattern


def test_neighbour_is_a_clean_permutation():
    dests = generate_destinations(Pattern.NEIGHBOUR, 6, 4)
    for src, dsts in dests.items():
        assert dsts == [(src + 1) % 6] * 4


def test_hotspot_targets_rank_zero():
    dests = generate_destinations(Pattern.HOTSPOT, 5, 3)
    for src in range(1, 5):
        assert dests[src] == [0, 0, 0]
    assert dests[0] == [1, 1, 1]


def test_generation_validation():
    with pytest.raises(ValueError):
        generate_destinations(Pattern.UNIFORM, 1, 4)
    with pytest.raises(ValueError):
        generate_destinations(Pattern.UNIFORM, 4, 0)


def test_pattern_ordering_on_crossbar():
    """The textbook ordering: permutation > random > hotspot."""
    results = {
        p: run_pattern(MpLite(), GA620, p, nranks=8) for p in Pattern
    }
    bw = {p: r.aggregate_bandwidth for p, r in results.items()}
    assert bw[Pattern.NEIGHBOUR] > bw[Pattern.UNIFORM] > bw[Pattern.HOTSPOT]


def test_neighbour_scales_with_ranks():
    small = run_pattern(MpLite(), GA620, Pattern.NEIGHBOUR, nranks=4)
    big = run_pattern(MpLite(), GA620, Pattern.NEIGHBOUR, nranks=8)
    assert big.aggregate_bandwidth == pytest.approx(
        2 * small.aggregate_bandwidth, rel=0.05
    )


def test_hotspot_capped_at_one_port():
    r = run_pattern(MpLite(), GA620, Pattern.HOTSPOT, nranks=8)
    # Rank 0's RX port drains at ~68.8 MB/s; aggregate includes rank
    # 0's own outgoing messages, hence slightly above.
    assert r.aggregate_bandwidth < 90e6


def test_result_accounting():
    r = run_pattern(MpLite(), GA620, Pattern.NEIGHBOUR, nranks=4,
                    message_bytes=1000, messages_per_rank=5)
    assert r.total_bytes == 4 * 5 * 1000
    assert r.completion_time > 0


def test_run_is_deterministic():
    a = run_pattern(MpLite(), GA620, Pattern.UNIFORM, nranks=6, seed=9)
    b = run_pattern(MpLite(), GA620, Pattern.UNIFORM, nranks=6, seed=9)
    assert a.completion_time == b.completion_time
