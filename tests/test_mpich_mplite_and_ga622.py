"""Sec. 4.4's MPICH-MP_Lite hybrid and Sec. 7's GA622 driver aside."""

import pytest

from repro.apps import run_overlap_probe
from repro.core import run_netpipe
from repro.experiments import configs
from repro.mplib import Mpich, MpichMpLite, MpichMpLiteParams, RawTcp
from repro.units import kb


GA620 = configs.pc_netgear_ga620()


def test_mpich_mplite_passes_tcp_performance_through():
    """Sec. 4.4: 'this performance can be passed along to the full MPI
    implementation of MPICH' — the channel device, not MPI semantics,
    is where MPICH's losses live."""
    hybrid = run_netpipe(MpichMpLite(), GA620)
    raw = run_netpipe(RawTcp(), GA620)
    assert hybrid.max_mbps / raw.max_mbps > 0.97


def test_mpich_mplite_beats_mpich_p4_dramatically():
    hybrid = run_netpipe(MpichMpLite(), GA620)
    p4 = run_netpipe(Mpich.tuned(), GA620)
    assert hybrid.max_mbps > 1.25 * p4.max_mbps


def test_mpich_mplite_keeps_the_rendezvous_dip():
    """MPI semantics stay: the 128 KB cutoff still dips."""
    hybrid = run_netpipe(MpichMpLite(), GA620)
    assert hybrid.mbps_at(kb(128)) < hybrid.mbps_at(kb(128) - 3)


def test_mpich_mplite_cutoff_is_parameterised():
    moved = run_netpipe(
        MpichMpLite(MpichMpLiteParams(rendezvous_cutoff=kb(256))), GA620
    )
    assert moved.mbps_at(kb(128)) > moved.mbps_at(kb(128) - 3) * 0.98


def test_mpich_mplite_inherits_sigio_overlap():
    r = run_overlap_probe(MpichMpLite(), GA620)
    assert r.overlap_efficiency > 0.9


def test_mpich_mplite_needs_sysctl_tuning_like_mplite():
    trendnet_tuned = run_netpipe(MpichMpLite(), configs.pc_trendnet())
    trendnet_default = run_netpipe(MpichMpLite(), configs.pc_trendnet(tuned=False))
    assert trendnet_tuned.max_mbps > 1.5 * trendnet_default.max_mbps


# -- GA622 on the DS20s (Sec. 7) ---------------------------------------------------
def test_ga622_on_ds20_poor_even_for_raw_tcp():
    """Sec. 7: the GA622s on the DS20s 'showed poor performance even
    for raw TCP' — the immature ns83820 driver, not the libraries."""
    ga622 = run_netpipe(RawTcp(), configs.ds20_netgear_ga622())
    ds20_good = run_netpipe(RawTcp(), configs.ds20_syskonnect_jumbo())
    assert ga622.plateau_mbps < 0.35 * ds20_good.plateau_mbps


def test_ga622_uses_the_full_64bit_bus_but_driver_dominates():
    """64-bit PCI capability doesn't save a bad driver."""
    from repro.hw.catalog import COMPAQ_DS20, NETGEAR_GA622
    from repro.hw.cluster import ClusterConfig

    cfg = configs.ds20_netgear_ga622()
    assert cfg.pci_bandwidth > 150e6  # the bus is fine...
    r = run_netpipe(RawTcp(), cfg)
    assert r.plateau_mbps < 350  # ...the ns83820 ack behaviour is not
