"""The project graph and its content-addressed AST cache."""

import ast
import pickle
from pathlib import Path

import pytest

from repro.check.analyzer import analyze_project, analyze_paths
from repro.check.project import AstCache, Project, ast_cache_salt, file_digest

pytestmark = pytest.mark.check

SRC = Path(__file__).resolve().parent.parent / "src"


# -- module graph / cross-module resolution -----------------------------------

def test_project_indexes_modules_by_path_and_name():
    project = Project.from_paths([SRC / "repro" / "mplib"])
    path = str(SRC / "repro" / "mplib" / "tcp_base.py")
    assert project.module_for_path(path) == "repro.mplib.tcp_base"
    assert project.source_for_path(path).startswith('"""')


def test_resolve_crosses_modules():
    project = Project.from_paths([SRC / "repro" / "mplib"])
    resolved = project.resolve("repro.mplib.tcp_base.TcpLibSpec")
    assert resolved is not None
    assert isinstance(resolved.node, ast.ClassDef)
    assert resolved.node.name == "TcpLibSpec"
    assert resolved.rest == ()


def test_resolve_returns_trailing_attribute_components():
    project = Project.from_paths([SRC / "repro" / "mplib"])
    resolved = project.resolve("repro.mplib.tcp_base.Route.DAEMON")
    assert resolved is not None
    assert isinstance(resolved.node, ast.ClassDef)
    assert resolved.rest == ("DAEMON",)


def test_resolve_follows_reexports():
    # repro.mplib/__init__ re-exports registry names; resolving through
    # the package path must land on the defining module.
    project = Project.from_paths([SRC / "repro" / "mplib"])
    resolved = project.resolve("repro.mplib.REGISTRY")
    if resolved is None:
        pytest.skip("repro.mplib does not re-export REGISTRY")
    assert resolved.ctx.module == "repro.mplib.registry"


def test_base_class_resolution_across_files():
    project = Project.from_paths([SRC / "repro" / "mplib"])
    path = str(SRC / "repro" / "mplib" / "tcp_base.py")
    ctx = next(m for m in project.modules if m.path == path)
    classdef = next(
        s
        for s in ctx.tree.body
        if isinstance(s, ast.ClassDef) and s.name == "TcpLibEndpoint"
    )
    resolved = project.resolve_base_class(ctx, classdef.bases[0])
    assert resolved is not None
    assert resolved.node.name == "LibEndpoint"
    assert resolved.ctx.module == "repro.mplib.base"


def test_parse_error_becomes_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    project = Project.from_paths([bad])
    findings = analyze_project(project)
    assert [f.rule for f in findings] == ["parse-error"]


# -- AST cache ----------------------------------------------------------------

def test_cold_then_warm_cache_parses_zero_files(tmp_path):
    cache = AstCache(tmp_path / "ast")
    cold = Project.from_paths([SRC / "repro" / "check"], cache=cache)
    assert cold.stats.parsed == cold.stats.files > 0
    assert cold.stats.cache_hits == 0

    warm = Project.from_paths([SRC / "repro" / "check"], cache=cache)
    assert warm.stats.parsed == 0
    assert warm.stats.cache_hits == warm.stats.files == cold.stats.files


def test_cached_and_fresh_analyses_agree(tmp_path):
    cache = AstCache(tmp_path / "ast")
    target = [SRC / "repro" / "mplib"]
    fresh = analyze_paths(target)
    analyze_paths(target, cache=cache)  # populate
    warm = analyze_paths(target, cache=cache)
    assert warm == fresh


def test_changed_content_misses_the_cache(tmp_path):
    source_a = "x = 1\n"
    source_b = "x = 2\n"
    f = tmp_path / "m.py"
    cache = AstCache(tmp_path / "ast")

    f.write_text(source_a)
    first = Project.from_paths([f], cache=cache)
    assert first.stats.parsed == 1

    f.write_text(source_b)
    second = Project.from_paths([f], cache=cache)
    assert second.stats.parsed == 1  # digest changed -> miss
    assert second.stats.cache_hits == 0


def test_corrupt_cache_entry_is_a_miss_not_an_error(tmp_path):
    f = tmp_path / "m.py"
    f.write_text("value = 40 + 2\n")
    cache = AstCache(tmp_path / "ast")
    Project.from_paths([f], cache=cache)

    digest = file_digest(f.read_bytes())
    entry = cache._entry(digest)
    assert entry.exists()
    entry.write_bytes(b"not a pickle")
    reread = Project.from_paths([f], cache=cache)
    assert reread.stats.parsed == 1
    assert reread.stats.cache_hits == 0

    # A pickle of the wrong type is equally a miss.
    entry.write_bytes(pickle.dumps({"not": "an ast"}))
    again = Project.from_paths([f], cache=cache)
    assert again.stats.parsed == 1


def test_cache_salt_names_python_version():
    salt = ast_cache_salt()
    import sys

    assert f"py{sys.version_info[0]}.{sys.version_info[1]}" in salt


def test_readonly_cache_dir_degrades_to_parsing(tmp_path):
    f = tmp_path / "m.py"
    f.write_text("x = 1\n")
    blocked = tmp_path / "file-not-dir"
    blocked.write_text("")
    cache = AstCache(blocked / "nested")  # parent is a file: mkdir fails
    project = Project.from_paths([f], cache=cache)
    assert project.stats.parsed == 1  # no crash, no hit
