"""Verify tier: seeded protocol mutants produce replayable witnesses.

Each fixture under ``tests/verify_fixtures/`` is the clean rendezvous
protocol with exactly one seeded bug.  For every mutant this file
proves the full pipeline end to end: the model checker emits the
expected counterexample, the counterexample replays on the real event
engine into the *same* stuck state, and the replay is bit-deterministic
(identical obs-trace digests across runs).
"""

import importlib.util
from pathlib import Path

import pytest

from repro.check.project import Project
from repro.experiments.configs import pc_netgear_ga620
from repro.verify import replay as vreplay
from repro.verify.explore import verify_pairing
from repro.verify.extract import iter_endpoint_models
from repro.verify.model import enumerate_paths
from repro.verify.universe import sizes_for_spec

pytestmark = pytest.mark.verify

FIXTURES = Path(__file__).parent / "verify_fixtures"
CONFIG = pc_netgear_ga620()


def load_fixture(name):
    spec = importlib.util.spec_from_file_location(
        f"verify_fixture_{name}", FIXTURES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def model_check(name, spec):
    """(model, counterexamples, witnesses) for one fixture file."""
    project = Project.from_paths([FIXTURES / f"{name}.py"])
    models = list(iter_endpoint_models(project))
    assert len(models) == 1, [m.name for m in models]
    model = models[0]
    paths_by_size = {
        size: (
            enumerate_paths(model.leg("send"), spec, size),
            enumerate_paths(model.leg("recv"), spec, size),
        )
        for size in sizes_for_spec(spec)
    }
    cexs, witnesses, _stats = verify_pairing(
        model.name, name, spec, paths_by_size, check_faults=True
    )
    return model, cexs, witnesses


# -- clean twin ---------------------------------------------------------------

def test_clean_twin_model_checks_clean_and_replays_to_completion():
    fx = load_fixture("clean_rendezvous")
    _model, cexs, witnesses = model_check(
        "clean_rendezvous", fx.FixtureSpec()
    )
    assert cexs == []
    assert witnesses, "drops must wedge the non-recovering clean twin"
    result = vreplay.replay(
        fx.CleanRendezvousLib(), CONFIG, fx.FIXTURE_THRESHOLD + 1
    )
    assert result.completed


# -- mutant: rendezvous ack dropped ------------------------------------------

def test_ack_dropped_mutant_deadlocks_and_replay_confirms():
    fx = load_fixture("rdv_ack_dropped")
    _model, cexs, _w = model_check("rdv_ack_dropped", fx.FixtureSpec())
    deadlocks = [c for c in cexs if c.prop == "deadlock"]
    assert deadlocks, [c.describe() for c in cexs]
    # Deadlock in the rendezvous regime only.
    assert {c.size for c in deadlocks} == {
        fx.FIXTURE_THRESHOLD, fx.FIXTURE_THRESHOLD + 1, 1 << 20
    }
    confirmation = vreplay.confirm(
        deadlocks[0], fx.AckDroppedLib(), CONFIG
    )
    assert confirmation["confirmed"] and confirmation["stuck"]
    # The engine wedges exactly as modeled: sender on cts, recv on data.
    assert confirmation["blocked"] == [["cts"], ["data"]]


# -- mutant: mismatched thresholds -------------------------------------------

def test_threshold_mutant_fires_only_at_the_boundary_size():
    fx = load_fixture("mismatched_thresholds")
    _model, cexs, _w = model_check(
        "mismatched_thresholds", fx.FixtureSpec()
    )
    thresholds = [c for c in cexs if c.prop == "threshold"]
    assert [c.size for c in thresholds] == [fx.FIXTURE_THRESHOLD]
    confirmation = vreplay.confirm(
        thresholds[0], fx.MismatchedThresholdLib(), CONFIG
    )
    assert confirmation["confirmed"] and confirmation["stuck"]


# -- mutant: unbacked recovery claim -----------------------------------------

def test_claims_recovery_mutant_violates_liveness_under_drops():
    fx = load_fixture("claims_recovery")
    _model, cexs, witnesses = model_check(
        "claims_recovery", fx.FixtureSpec()
    )
    liveness = [c for c in cexs if c.prop == "liveness"]
    assert liveness and witnesses == []
    assert all(c.fault is not None for c in liveness)
    confirmation = vreplay.confirm(
        liveness[0], fx.ClaimsRecoveryLib(), CONFIG
    )
    assert confirmation["confirmed"] and confirmation["stuck"]
    assert confirmation["dropped"] == 1


def test_same_protocol_without_the_claim_yields_witnesses_not_findings():
    fx = load_fixture("clean_rendezvous")
    truthful = fx.FixtureSpec(recovers_from_loss=False)
    _m, cexs, witnesses = model_check("clean_rendezvous", truthful)
    assert [c for c in cexs if c.prop == "liveness"] == []
    assert all(w.prop == "liveness" for w in witnesses)


# -- bit-determinism ----------------------------------------------------------

@pytest.mark.parametrize("size_offset", [0, 1])
def test_mutant_replay_is_bit_deterministic(size_offset):
    fx = load_fixture("rdv_ack_dropped")
    size = fx.FIXTURE_THRESHOLD + size_offset
    digests = set()
    for _ in range(3):
        result = vreplay.replay(fx.AckDroppedLib(), CONFIG, size)
        assert result.stuck
        digests.add(result.digest)
    assert len(digests) == 1, "replays must hash identically"


def test_fault_replay_is_bit_deterministic():
    fx = load_fixture("claims_recovery")
    _m, cexs, _w = model_check("claims_recovery", fx.FixtureSpec())
    cex = [c for c in cexs if c.prop == "liveness"][0]
    plan = vreplay.wire_plan_for(cex)
    first = vreplay.replay(fx.ClaimsRecoveryLib(), CONFIG, cex.size, plan)
    second = vreplay.replay(fx.ClaimsRecoveryLib(), CONFIG, cex.size, plan)
    assert first.digest == second.digest
    assert first.messages_dropped == second.messages_dropped == 1


# -- repro check integration --------------------------------------------------

def _check_rules(path):
    from repro.check.analyzer import analyze_project

    project = Project.from_paths([path])
    return {f.rule for f in analyze_project(project)}


def test_check_family_flags_the_mutants_and_passes_the_twin():
    assert "verify-deadlock" in _check_rules(
        FIXTURES / "rdv_ack_dropped.py"
    )
    assert "verify-threshold" in _check_rules(
        FIXTURES / "mismatched_thresholds.py"
    )
    assert _check_rules(FIXTURES / "clean_rendezvous.py") == set()
