"""Unit tests for Resource / Store / PriorityStore primitives."""

import pytest

from repro.sim import Engine, Resource, Store, PriorityStore


def test_resource_grants_immediately_when_free():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def proc(eng):
        req = res.request()
        yield req
        t = eng.now
        res.release(req)
        return t

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == 0.0


def test_resource_serialises_contenders():
    eng = Engine()
    res = Resource(eng, capacity=1)
    trace = []

    def proc(eng, name, hold):
        req = res.request()
        yield req
        trace.append((name, "acquired", eng.now))
        yield eng.timeout(hold)
        res.release(req)

    eng.process(proc(eng, "a", 2.0))
    eng.process(proc(eng, "b", 1.0))
    eng.run()
    assert trace == [("a", "acquired", 0.0), ("b", "acquired", 2.0)]


def test_resource_capacity_two_allows_parallelism():
    eng = Engine()
    res = Resource(eng, capacity=2)
    trace = []

    def proc(eng, name):
        req = res.request()
        yield req
        trace.append((name, eng.now))
        yield eng.timeout(1.0)
        res.release(req)

    for name in "abc":
        eng.process(proc(eng, name))
    eng.run()
    assert trace == [("a", 0.0), ("b", 0.0), ("c", 1.0)]


def test_resource_rejects_oversized_request():
    eng = Engine()
    res = Resource(eng, capacity=2)
    with pytest.raises(ValueError):
        res.request(3)
    with pytest.raises(ValueError):
        res.request(0)


def test_resource_over_release_detected():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def proc(eng):
        req = res.request()
        yield req
        res.release(req)
        with pytest.raises(RuntimeError):
            res.release(req)

    eng.process(proc(eng))
    eng.run()


def test_resource_utilisation_accounting():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def proc(eng):
        yield eng.timeout(1.0)
        req = res.request()
        yield req
        yield eng.timeout(1.0)
        res.release(req)
        yield eng.timeout(2.0)

    eng.process(proc(eng))
    eng.run()
    assert res.utilisation() == pytest.approx(0.25)


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    store.put("x")
    store.put("y")
    got = []

    def proc(eng):
        got.append((yield store.get()))
        got.append((yield store.get()))

    eng.process(proc(eng))
    eng.run()
    assert got == ["x", "y"]


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)

    def getter(eng):
        item = yield store.get()
        return (item, eng.now)

    def putter(eng):
        yield eng.timeout(3.0)
        store.put("late")

    p = eng.process(getter(eng))
    eng.process(putter(eng))
    eng.run()
    assert p.value == ("late", 3.0)


def test_store_filtered_get_skips_nonmatching():
    eng = Engine()
    store = Store(eng)
    store.put(("tagA", 1))
    store.put(("tagB", 2))

    def proc(eng):
        item = yield store.get(lambda m: m[0] == "tagB")
        return item

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == ("tagB", 2)
    assert store.peek_all() == (("tagA", 1),)


def test_store_filtered_get_waits_for_match():
    eng = Engine()
    store = Store(eng)

    def proc(eng):
        item = yield store.get(lambda m: m == "wanted")
        return (item, eng.now)

    def feeder(eng):
        yield eng.timeout(1.0)
        store.put("noise")
        yield eng.timeout(1.0)
        store.put("wanted")

    p = eng.process(proc(eng))
    eng.process(feeder(eng))
    eng.run()
    assert p.value == ("wanted", 2.0)
    assert len(store) == 1  # "noise" still queued


def test_store_two_filtered_getters_both_served():
    eng = Engine()
    store = Store(eng)
    results = {}

    def proc(eng, key):
        item = yield store.get(lambda m, key=key: m[0] == key)
        results[key] = item

    eng.process(proc(eng, "a"))
    eng.process(proc(eng, "b"))
    store.put(("b", 1))
    store.put(("a", 2))
    eng.run()
    assert results == {"a": ("a", 2), "b": ("b", 1)}


def test_priority_store_orders_items():
    eng = Engine()
    ps = PriorityStore(eng)
    for pri in (3, 1, 2):
        ps.put((pri, f"job{pri}"))
    got = []

    def proc(eng):
        for _ in range(3):
            got.append((yield ps.get()))

    eng.process(proc(eng))
    eng.run()
    assert got == [(1, "job1"), (2, "job2"), (3, "job3")]


def test_priority_store_rejects_filter():
    eng = Engine()
    ps = PriorityStore(eng)
    ps.get(lambda x: True)
    with pytest.raises(ValueError):
        ps.put(1)
