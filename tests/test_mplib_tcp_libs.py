"""TCP message-passing library models: each library's paper behaviours."""

import pytest

from repro.core import netpipe_sizes, run_netpipe
from repro.hw.catalog import (
    COMPAQ_DS20,
    NETGEAR_GA620,
    PENTIUM4_PC,
    SYSKONNECT_SK9843,
    TRENDNET_TEG_PCITX,
)
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.mplib import (
    LamMode,
    LamMpi,
    LamParams,
    Mpich,
    MpichParams,
    MpiPro,
    MpiProParams,
    MpLite,
    Pvm,
    PvmEncoding,
    PvmParams,
    PvmRoute,
    RawTcp,
    Tcgmsg,
)
from repro.units import MB, kb

GA620 = ClusterConfig(PENTIUM4_PC, NETGEAR_GA620, sysctl=TUNED_SYSCTL)
TRENDNET = ClusterConfig(PENTIUM4_PC, TRENDNET_TEG_PCITX, sysctl=TUNED_SYSCTL)
DS20_SK = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000, sysctl=TUNED_SYSCTL)

#: A thinned schedule keeps each sweep fast while covering the features.
SIZES = netpipe_sizes(stop=8 * MB)


def sweep(lib, cfg=GA620):
    return run_netpipe(lib, cfg, sizes=SIZES)


# -- raw TCP ------------------------------------------------------------------
def test_raw_tcp_is_the_reference_550(paper_tolerance=0.05):
    r = sweep(RawTcp())
    assert r.max_mbps == pytest.approx(550, rel=paper_tolerance)


def test_raw_tcp_untuned_uses_os_default_buffers():
    tuned = sweep(RawTcp(), TRENDNET)
    untuned = sweep(RawTcp.untuned(), TRENDNET)
    assert untuned.max_mbps == pytest.approx(290, rel=0.08)
    assert tuned.max_mbps / untuned.max_mbps > 1.6


# -- MPICH ---------------------------------------------------------------------
def test_mpich_loses_25_to_30_percent_on_ga620():
    """Fig. 1 / Sec. 7: the p4 buffered-receive memcpy costs MPICH
    25-30 % of raw TCP for large messages."""
    raw = sweep(RawTcp())
    mpich = sweep(Mpich.tuned())
    frac = mpich.max_mbps / raw.max_mbps
    assert 0.68 <= frac <= 0.78


def test_mpich_untuned_is_5x_slower():
    """Sec. 4.1: P4_SOCKBUFSIZE 32 kB -> 256 kB was a 5-fold increase."""
    untuned = sweep(Mpich())
    tuned = sweep(Mpich.tuned())
    assert untuned.plateau_mbps == pytest.approx(75, rel=0.15)
    assert 4.0 <= tuned.plateau_mbps / untuned.plateau_mbps <= 7.0


def test_mpich_sharp_dip_at_128kb_rendezvous():
    """Sec. 4.1: 'the sharp dip at 128 kB in figure 1 where MPICH
    starts using a large-message rendezvous mode'."""
    r = sweep(Mpich.tuned())
    at_cutoff = r.mbps_at(kb(128))
    just_below = r.mbps_at(kb(128) - 3)
    assert at_cutoff < just_below * 0.95


def test_mpich_raising_rendezvous_cutoff_moves_the_dip():
    """The cutoff is changeable only by editing the source; doing so
    moves the dip (Sec. 3.1)."""
    stock = sweep(Mpich.tuned())
    patched = sweep(Mpich(MpichParams(p4_sockbufsize=kb(256), rendezvous_cutoff=kb(512))))
    assert patched.mbps_at(kb(128)) > stock.mbps_at(kb(128))
    assert patched.mbps_at(kb(512)) < patched.mbps_at(kb(512) - 3)


def test_mpich_use_rndv_false_removes_dip():
    no_rndv = sweep(Mpich(MpichParams(p4_sockbufsize=kb(256), use_rndv=False)))
    assert no_rndv.dips(min_depth=0.04) == []


# -- LAM/MPI ------------------------------------------------------------------
def test_lam_with_O_near_raw_tcp_on_ga620():
    raw = sweep(RawTcp())
    lam = sweep(LamMpi.tuned())
    assert lam.max_mbps / raw.max_mbps >= 0.95


def test_lam_without_O_350_mbps():
    """Sec. 4.2: 'LAM/MPI tops out at 350 Mbps when no optimizations
    are used.'"""
    lam = sweep(LamMpi(LamParams(mode=LamMode.C2C)))
    assert lam.max_mbps == pytest.approx(350, rel=0.1)


def test_lamd_cuts_throughput_to_260_and_doubles_latency():
    """Sec. 4.2: lamd routing -> 260 Mb/s, latency 245 us."""
    lamd = sweep(LamMpi.with_daemons())
    assert lamd.max_mbps == pytest.approx(260, rel=0.1)
    assert lamd.latency_us == pytest.approx(245, rel=0.08)


def test_lam_rendezvous_dip_at_64kb():
    lam = sweep(LamMpi.tuned())
    assert lam.mbps_at(kb(64)) < lam.mbps_at(kb(64) - 3)


def test_lam_suffers_about_half_on_trendnet():
    """Fig. 2: LAM (untunable buffers) loses ~50 % on the TrendNet."""
    raw = sweep(RawTcp(), TRENDNET)
    lam = sweep(LamMpi.tuned(), TRENDNET)
    assert lam.max_mbps / raw.max_mbps < 0.6


# -- MPI/Pro --------------------------------------------------------------------
def test_mpipro_within_5_percent_on_ga620():
    raw = sweep(RawTcp())
    pro = sweep(MpiPro.tuned())
    assert pro.max_mbps / raw.max_mbps >= 0.93


def test_mpipro_tcp_long_removes_dip():
    """Sec. 4.3: raising tcp_long from 32 kB to 128 kB 'removes much of
    a dip in performance at the rendezvous threshold'."""
    stock = sweep(MpiPro())
    tuned = sweep(MpiPro.tuned())
    assert tuned.mbps_at(kb(32)) > stock.mbps_at(kb(32))


def test_mpipro_flattens_on_trendnet():
    """Sec. 4.3: MPI/Pro flattens out around 250 Mb/s on TrendNet."""
    pro = sweep(MpiPro.tuned(), TRENDNET)
    assert pro.max_mbps == pytest.approx(260, rel=0.15)


# -- MP_Lite ----------------------------------------------------------------------
def test_mplite_matches_raw_tcp_everywhere():
    """Sec. 4.4: 'MP_Lite matches the raw TCP performance to within a
    few percent on all GigE cards.'"""
    for cfg in (GA620, TRENDNET, DS20_SK):
        raw = sweep(RawTcp(), cfg)
        lite = sweep(MpLite(), cfg)
        assert lite.max_mbps / raw.max_mbps >= 0.97, cfg.nic.name


def test_mplite_needs_sysctl_tuning_not_library_tuning():
    """MP_Lite asks for the max the kernel allows; with default sysctl
    limits it is as stuck as everyone else."""
    from repro.hw.cluster import DEFAULT_SYSCTL

    stuck = sweep(MpLite(), TRENDNET.with_sysctl(DEFAULT_SYSCTL))
    free = sweep(MpLite(), TRENDNET)
    assert free.max_mbps > 1.5 * stuck.max_mbps


# -- PVM ---------------------------------------------------------------------------
def test_pvm_daemon_route_collapses_to_90():
    """Sec. 4.5: default pvmd routing 'limits performance to around
    90 Mbps'."""
    pvm = sweep(Pvm())
    assert pvm.max_mbps == pytest.approx(90, rel=0.15)


def test_pvm_direct_route_4x():
    """'Bypassing the daemons ... produces a 4-fold increase to a
    maximum of 330 Mbps.'"""
    daemon = sweep(Pvm())
    direct = sweep(Pvm.direct())
    assert direct.max_mbps == pytest.approx(330, rel=0.1)
    assert 3.0 <= direct.max_mbps / daemon.max_mbps <= 5.0


def test_pvm_inplace_reaches_415():
    """'PvmDataInPlace ... further increasing the maximum transfer rate
    to 415 Mbps.'"""
    best = sweep(Pvm.tuned())
    assert best.max_mbps == pytest.approx(415, rel=0.1)


def test_pvm_optimisation_order():
    daemon = sweep(Pvm())
    direct = sweep(Pvm.direct())
    inplace = sweep(Pvm.tuned())
    assert daemon.max_mbps < direct.max_mbps < inplace.max_mbps


def test_pvm_trendnet_is_the_worst_of_fig2():
    """Fig. 2: 'PVM has trouble with the TrendNet cards where it is
    limited to only 190 Mbps.'"""
    pvm = sweep(Pvm.tuned(), TRENDNET)
    assert pvm.max_mbps == pytest.approx(200, rel=0.2)


# -- TCGMSG ---------------------------------------------------------------------------
def test_tcgmsg_matches_tcp_on_ga620():
    raw = sweep(RawTcp())
    tcg = sweep(Tcgmsg())
    assert tcg.max_mbps / raw.max_mbps >= 0.97


def test_tcgmsg_hardwired_buffer_hurts_on_ds20():
    """Sec. 7: 32 kB hardwired -> ~400 Mb/s on SysKonnect/DS20 jumbo."""
    tcg = sweep(Tcgmsg(), DS20_SK)
    assert tcg.max_mbps == pytest.approx(400, rel=0.1)


def test_tcgmsg_recompiled_with_128kb_matches_tcp():
    """Sec. 7: recompiling with 128 kB took TCGMSG 'from 400 Mbps to
    900 Mbps, matching raw TCP'."""
    tcg = sweep(Tcgmsg.recompiled(kb(128)), DS20_SK)
    raw = sweep(RawTcp(), DS20_SK)
    assert tcg.max_mbps == pytest.approx(900, rel=0.05)
    assert tcg.max_mbps / raw.max_mbps >= 0.97


# -- registry ---------------------------------------------------------------------
def test_registry_instantiates_every_library():
    from repro.mplib import get_library, library_names

    for name in library_names():
        lib = get_library(name)
        assert lib.display_name
        assert isinstance(lib.progress_independent, bool)


def test_registry_unknown_name():
    from repro.mplib import get_library

    with pytest.raises(KeyError, match="unknown library"):
        get_library("no-such-thing")


def test_registry_names_sorted():
    from repro.mplib import library_names

    names = library_names()
    assert names == sorted(names)
    assert "mpich-mplite" in names
