"""Property tests: the fabric never loses, duplicates or corrupts
messages under randomised traffic."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.experiments import configs
from repro.fabric import Fabric
from repro.mplib import RawTcp
from repro.sim import Engine


def make_fabric(nranks):
    engine = Engine()
    link = RawTcp().link_model(configs.pc_netgear_ga620())
    return engine, Fabric(engine, link, nranks)


traffic = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # src
        st.integers(min_value=0, max_value=4),  # dst
        st.integers(min_value=0, max_value=1 << 20),  # size
    ),
    min_size=1,
    max_size=30,
).map(lambda msgs: [(s, d, n) for s, d, n in msgs if s != d])


@settings(max_examples=30, deadline=None)
@given(msgs=traffic)
def test_every_message_delivered_exactly_once(msgs):
    if not msgs:
        return
    engine, fabric = make_fabric(5)
    expected = Counter((s, d, n) for s, d, n in msgs)
    received = Counter()

    def sender(src, dst, size, tag):
        yield from fabric.send(src, dst, size, tag=tag)

    def receiver(dst, count):
        for _ in range(count):
            msg = yield from fabric.recv(dst)
            received[(msg.src, msg.dst, msg.size)] += 1

    per_dst = Counter(d for _, d, _ in msgs)
    for i, (s, d, n) in enumerate(msgs):
        engine.process(sender(s, d, n, tag=f"m{i}"))
    for dst, count in per_dst.items():
        engine.process(receiver(dst, count))
    engine.run()
    assert received == expected
    assert fabric.messages_delivered == len(msgs)


@settings(max_examples=20, deadline=None)
@given(
    msgs=traffic,
    nranks=st.integers(min_value=2, max_value=5),
)
def test_delivery_times_never_precede_injection(msgs, nranks):
    msgs = [(s % nranks, d % nranks, n) for s, d, n in msgs]
    msgs = [(s, d, n) for s, d, n in msgs if s != d]
    if not msgs:
        return
    engine, fabric = make_fabric(nranks)
    delivered = []

    def sender(src, dst, size):
        yield from fabric.send(src, dst, size)

    def receiver(dst, count):
        for _ in range(count):
            msg = yield from fabric.recv(dst)
            delivered.append(msg)

    per_dst = Counter(d for _, d, _ in msgs)
    for s, d, n in msgs:
        engine.process(sender(s, d, n))
    for dst, count in per_dst.items():
        engine.process(receiver(dst, count))
    engine.run()
    link = fabric.link
    for msg in delivered:
        assert msg.delivered_at >= msg.sent_at
        # Latency floor: at least the link's fixed latency after the
        # injection finished.
        assert msg.delivered_at >= msg.sent_at + link.latency0 - 1e-12


@settings(max_examples=20, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=1 << 20),
                      min_size=1, max_size=10))
def test_fifo_per_pair(sizes):
    """Messages between one ordered pair arrive in send order."""
    engine, fabric = make_fabric(2)
    order = []

    def sender():
        for i, n in enumerate(sizes):
            yield from fabric.send(0, 1, n, tag=str(i))

    def receiver():
        for _ in sizes:
            msg = yield from fabric.recv(1)
            order.append(int(msg.tag))

    engine.process(sender())
    engine.process(receiver())
    engine.run()
    assert order == sorted(order)
