"""Verify tier: endpoint-model extraction and path enumeration.

The model layer (:mod:`repro.verify.model` + ``extract``) compiles the
real mplib endpoint generators into bounded state machines.  These
tests pin the structural claims everything downstream rests on: which
classes compile, how spec applicability partitions the universe, and
that the enumerated paths flip regime exactly at the spec threshold.
"""

import pytest

from repro.mplib.registry import get_library
from repro.verify import build_models
from repro.verify.model import (
    SpecNotApplicable,
    enumerate_paths,
)

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def models():
    return build_models()


def test_all_three_endpoint_families_compile(models):
    assert set(models) == {
        "TcpLibEndpoint", "OsBypassEndpoint", "_PassthroughEndpoint"
    }


def test_models_carry_both_legs_with_source_anchors(models):
    for model in models.values():
        for leg in ("send", "recv"):
            assert model.leg(leg), (model.name, leg)
            path, line = model.method_locs[leg]
            assert path.endswith(".py") and line > 0


def test_paths_flip_regime_exactly_at_the_threshold(models):
    spec = get_library("mpich").spec
    t = spec.eager_threshold
    assert t is not None
    send = models["TcpLibEndpoint"].leg("send")

    def has_rts(size):
        paths = enumerate_paths(send, spec, size)
        regimes = {p.has("send", "rts") for p in paths}
        assert len(regimes) == 1, "regime must be decided at every size"
        return regimes.pop()

    assert not has_rts(t - 1)
    assert has_rts(t)
    assert has_rts(t + 1)


def test_foreign_spec_is_not_applicable(models):
    # An OS-bypass spec lacks the TCP spec attributes the TCP endpoint
    # guards on; the model must refuse the pairing, not guess.
    via_spec = get_library("mvich").spec
    with pytest.raises(SpecNotApplicable):
        enumerate_paths(
            models["TcpLibEndpoint"].leg("send"), via_spec, 1024
        )


def test_spec_applicability_partitions_the_universe(models):
    from repro.mplib.registry import iter_spec_universe

    applicable = {name: 0 for name in models}
    for _spec_name, spec in iter_spec_universe():
        for name, model in models.items():
            try:
                enumerate_paths(model.leg("send"), spec, 1024)
                enumerate_paths(model.leg("recv"), spec, 1024)
            except SpecNotApplicable:
                continue
            applicable[name] += 1
    # The passthrough endpoint reads no spec attribute, so every spec
    # applies; the TCP/OS-bypass endpoints accept only their own kind.
    assert applicable["_PassthroughEndpoint"] == 27
    assert applicable["TcpLibEndpoint"] == 18
    assert applicable["OsBypassEndpoint"] == 9


def test_every_op_carries_a_clickable_anchor(models):
    spec = get_library("mpich").spec
    for leg in ("send", "recv"):
        for path in enumerate_paths(
            models["TcpLibEndpoint"].leg(leg), spec, 1 << 20
        ):
            for op in path.ops:
                assert op.path and op.line > 0, op
