"""Fixture-driven tests of the async-* event-loop safety family.

Each seeded mutant must fire exactly its one rule at exactly its
planted line; the good fixture mirrors every sanctioned serve-core
idiom and must stay silent.  Findings are selected down to the family
(plus fp-*) because the fixtures pretend to live in ``repro.serve``,
where determinism/purity rules also have opinions about ``time`` and
``asyncio`` imports — those are covered by their own fixture corpus.
"""

from pathlib import Path

import pytest

from repro.check import analyze_paths

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).resolve().parent / "check_fixtures"

ASYNC_RULES = frozenset({
    "async-atomicity", "async-blocking", "async-orphan-task",
    "async-unbounded",
})


def async_findings(name):
    findings = analyze_paths([FIXTURES / name], rules=ASYNC_RULES)
    return [(f.rule, f.line) for f in findings]


def fixture_line(name, needle):
    for lineno, line in enumerate(
        (FIXTURES / name).read_text().splitlines(), start=1
    ):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


def test_atomicity_mutant_fires_at_the_stale_write():
    assert async_findings("async_atomicity_bad.py") == [
        ("async-atomicity",
         fixture_line("async_atomicity_bad.py", "self.total = seen + 1")),
    ]


def test_blocking_mutant_fires_on_primitive_and_entry_point():
    assert async_findings("async_blocking_bad.py") == [
        ("async-blocking",
         fixture_line("async_blocking_bad.py", "time.sleep(0.01)")),
        ("async-blocking",
         fixture_line("async_blocking_bad.py",
                      "execute_with_policy(requests, policy)")),
    ]


def test_orphan_task_mutant_fires_at_the_spawn():
    assert async_findings("async_orphan_bad.py") == [
        ("async-orphan-task",
         fixture_line("async_orphan_bad.py", "asyncio.create_task")),
    ]


def test_unbounded_queue_mutant_fires_at_the_constructor():
    assert async_findings("async_unbounded_bad.py") == [
        ("async-unbounded",
         fixture_line("async_unbounded_bad.py", "asyncio.Queue()")),
    ]


def test_sanctioned_serve_idioms_stay_silent():
    # Coalescing-future probe, to_thread by reference, bounded queue,
    # parked task, constant-RHS cleanup: all clean.
    assert async_findings("async_good.py") == []


def test_family_is_scoped_to_the_serving_layer():
    # The same blocking mutant relocated into a worker-side package
    # must not fire: time.sleep in a retry loop there is the point.
    source = (FIXTURES / "async_blocking_bad.py").read_text().replace(
        "# repro: module=repro.serve.fixture_blocking",
        "# repro: module=repro.exec.fixture_blocking",
    )
    from repro.check import analyze_source

    findings = analyze_source(source, rules=ASYNC_RULES)
    assert findings == []
