# repro: module=repro.mplib.fixture_rdv_ack_dropped
"""Seeded mutant: the receiver's rendezvous CTS ack leg is deleted.

Copy of ``clean_rendezvous.py`` with one bug: ``recv`` consumes the
RTS but never answers with a CTS, so above the threshold the sender
blocks on ``recv("cts")`` while the receiver blocks on
``recv("data")`` — a deadlock.  ``repro.verify`` must emit a
``verify-deadlock`` counterexample for every rendezvous-capable spec,
and its engine replay must wedge with exactly those two pending
receives, bit-deterministically.
"""

from dataclasses import dataclass
from typing import Generator

from repro.net.channel import Endpoint, SimChannel
from repro.net.tcp import TcpModel, TcpTuning

FIXTURE_THRESHOLD = 4096


@dataclass(frozen=True)
class FixtureSpec:
    eager_threshold: int | None = FIXTURE_THRESHOLD
    recovers_from_loss: bool = False


class AckDroppedEndpoint:
    """Handshake whose passive side never acknowledges the RTS."""

    def __init__(self, spec: FixtureSpec, endpoint: Endpoint):
        self.spec = spec
        self.ep = endpoint

    def _is_rendezvous(self, nbytes: int) -> bool:
        t = self.spec.eager_threshold
        return t is not None and nbytes >= t

    def send(self, nbytes: int) -> Generator:
        if self._is_rendezvous(nbytes):
            yield from self.ep.send(32, tag="rts")
            yield from self.ep.recv(tag="cts")
            yield from self.ep.send(nbytes, tag="data")
        else:
            yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes: int) -> Generator:
        if self._is_rendezvous(nbytes):
            yield from self.ep.recv(tag="rts")
            # BUG (seeded): the CTS acknowledgement was dropped here.
        msg = yield from self.ep.recv(tag="data")
        return msg


class AckDroppedLib:
    name = "fixture-rdv-ack-dropped"
    display_name = "fixture: rendezvous ack dropped"

    def __init__(self, spec: FixtureSpec | None = None):
        self.spec = FixtureSpec() if spec is None else spec

    def link_model(self, config) -> TcpModel:
        return TcpModel(config, TcpTuning())

    def build(self, engine, config):
        channel = SimChannel(engine, self.link_model(config))
        return (
            AckDroppedEndpoint(self.spec, channel.endpoints[0]),
            AckDroppedEndpoint(self.spec, channel.endpoints[1]),
        )
