# repro: module=repro.mplib.fixture_mismatched_thresholds
"""Seeded mutant: sender and receiver disagree on the regime boundary.

Copy of ``clean_rendezvous.py`` with one bug: the sender switches to
rendezvous at ``nbytes >= threshold`` but the receiver only at
``nbytes > threshold`` — the classic off-by-one threshold mismatch
the paper's protocol dips make so costly.  At exactly the threshold
the sender runs the RTS/CTS handshake while the receiver waits for
eager data: ``repro.verify`` must emit a ``verify-threshold``
counterexample pinned to that one probe size (threshold ± 1 agree).
"""

from dataclasses import dataclass
from typing import Generator

from repro.net.channel import Endpoint, SimChannel
from repro.net.tcp import TcpModel, TcpTuning

FIXTURE_THRESHOLD = 4096


@dataclass(frozen=True)
class FixtureSpec:
    eager_threshold: int | None = FIXTURE_THRESHOLD
    recovers_from_loss: bool = False


class MismatchedThresholdEndpoint:
    """Handshake whose two legs disagree at nbytes == threshold."""

    def __init__(self, spec: FixtureSpec, endpoint: Endpoint):
        self.spec = spec
        self.ep = endpoint

    def _send_rendezvous(self, nbytes: int) -> bool:
        t = self.spec.eager_threshold
        return t is not None and nbytes >= t

    def _recv_rendezvous(self, nbytes: int) -> bool:
        # BUG (seeded): strict > where the send side uses >=.
        t = self.spec.eager_threshold
        return t is not None and nbytes > t

    def send(self, nbytes: int) -> Generator:
        if self._send_rendezvous(nbytes):
            yield from self.ep.send(32, tag="rts")
            yield from self.ep.recv(tag="cts")
            yield from self.ep.send(nbytes, tag="data")
        else:
            yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes: int) -> Generator:
        if self._recv_rendezvous(nbytes):
            yield from self.ep.recv(tag="rts")
            yield from self.ep.send(32, tag="cts")
        msg = yield from self.ep.recv(tag="data")
        return msg


class MismatchedThresholdLib:
    name = "fixture-mismatched-thresholds"
    display_name = "fixture: mismatched thresholds"

    def __init__(self, spec: FixtureSpec | None = None):
        self.spec = FixtureSpec() if spec is None else spec

    def link_model(self, config) -> TcpModel:
        return TcpModel(config, TcpTuning())

    def build(self, engine, config):
        channel = SimChannel(engine, self.link_model(config))
        return (
            MismatchedThresholdEndpoint(self.spec, channel.endpoints[0]),
            MismatchedThresholdEndpoint(self.spec, channel.endpoints[1]),
        )
