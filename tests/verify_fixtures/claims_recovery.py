# repro: module=repro.mplib.fixture_claims_recovery
"""Seeded mutant: a spec claiming loss recovery over a lossless-only
protocol.

The endpoint is the correct clean handshake — the bug is in the
*claim*: ``FixtureSpec.recovers_from_loss`` is True, yet the protocol
has no retransmission, so any single dropped handshake message wedges
the pair.  ``repro.verify``'s fault sweep must emit a
``verify-liveness`` counterexample (for non-claiming specs the same
stuck state is only an expected-stuck witness), and its replay must
wedge the engine under the counterexample's wire-fault plan.
"""

from dataclasses import dataclass
from typing import Generator

from repro.net.channel import Endpoint, SimChannel
from repro.net.tcp import TcpModel, TcpTuning

FIXTURE_THRESHOLD = 4096


@dataclass(frozen=True)
class FixtureSpec:
    eager_threshold: int | None = FIXTURE_THRESHOLD
    # BUG (seeded): claims recovery the protocol does not implement.
    recovers_from_loss: bool = True


class ClaimsRecoveryEndpoint:
    """Correct handshake — but its spec promises loss recovery."""

    def __init__(self, spec: FixtureSpec, endpoint: Endpoint):
        self.spec = spec
        self.ep = endpoint

    def _is_rendezvous(self, nbytes: int) -> bool:
        t = self.spec.eager_threshold
        return t is not None and nbytes >= t

    def send(self, nbytes: int) -> Generator:
        if self._is_rendezvous(nbytes):
            yield from self.ep.send(32, tag="rts")
            yield from self.ep.recv(tag="cts")
            yield from self.ep.send(nbytes, tag="data")
        else:
            yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes: int) -> Generator:
        if self._is_rendezvous(nbytes):
            yield from self.ep.recv(tag="rts")
            yield from self.ep.send(32, tag="cts")
        msg = yield from self.ep.recv(tag="data")
        return msg


class ClaimsRecoveryLib:
    name = "fixture-claims-recovery"
    display_name = "fixture: claims loss recovery"

    def __init__(self, spec: FixtureSpec | None = None):
        self.spec = FixtureSpec() if spec is None else spec

    def link_model(self, config) -> TcpModel:
        return TcpModel(config, TcpTuning())

    def build(self, engine, config):
        channel = SimChannel(engine, self.link_model(config))
        return (
            ClaimsRecoveryEndpoint(self.spec, channel.endpoints[0]),
            ClaimsRecoveryEndpoint(self.spec, channel.endpoints[1]),
        )
