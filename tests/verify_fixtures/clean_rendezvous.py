# repro: module=repro.mplib.fixture_clean_rendezvous
"""Clean twin: a correct eager/rendezvous handshake pair.

Verification fixture (see docs/VERIFICATION.md): this endpoint
implements the textbook protocol — both sides derive the regime from
the same predicate, the receiver acknowledges every RTS with a CTS —
so ``repro.verify`` must find **zero** counterexamples against every
spec in the registry universe.  The mutant fixtures next to this file
are copies of it with one seeded protocol bug each.
"""

from dataclasses import dataclass
from typing import Generator

from repro.net.channel import Endpoint, SimChannel
from repro.net.tcp import TcpModel, TcpTuning

#: Small threshold so tests exercise both regimes with tiny messages.
FIXTURE_THRESHOLD = 4096


@dataclass(frozen=True)
class FixtureSpec:
    """Minimal spec: just the regime threshold (and a recovery claim
    flag for the liveness fixture's twin tests)."""

    eager_threshold: int | None = FIXTURE_THRESHOLD
    recovers_from_loss: bool = False


class CleanRendezvousEndpoint:
    """Correct two-sided handshake over one SimChannel endpoint."""

    def __init__(self, spec: FixtureSpec, endpoint: Endpoint):
        self.spec = spec
        self.ep = endpoint

    def _is_rendezvous(self, nbytes: int) -> bool:
        t = self.spec.eager_threshold
        return t is not None and nbytes >= t

    def send(self, nbytes: int) -> Generator:
        if self._is_rendezvous(nbytes):
            yield from self.ep.send(32, tag="rts")
            yield from self.ep.recv(tag="cts")
            yield from self.ep.send(nbytes, tag="data")
        else:
            yield from self.ep.send(nbytes, tag="data")

    def recv(self, nbytes: int) -> Generator:
        if self._is_rendezvous(nbytes):
            yield from self.ep.recv(tag="rts")
            yield from self.ep.send(32, tag="cts")
        msg = yield from self.ep.recv(tag="data")
        return msg


class CleanRendezvousLib:
    """Runtime twin of the model: buildable for engine replay."""

    name = "fixture-clean-rendezvous"
    display_name = "fixture: clean rendezvous"

    def __init__(self, spec: FixtureSpec | None = None):
        self.spec = FixtureSpec() if spec is None else spec

    def link_model(self, config) -> TcpModel:
        return TcpModel(config, TcpTuning())

    def build(self, engine, config):
        channel = SimChannel(engine, self.link_model(config))
        return (
            CleanRendezvousEndpoint(self.spec, channel.endpoints[0]),
            CleanRendezvousEndpoint(self.spec, channel.endpoints[1]),
        )
