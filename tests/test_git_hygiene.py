"""Repo hygiene: build artifacts never enter the tree.

``__pycache__`` directories appear anywhere the interpreter imports
from (``src/repro/serve/`` included); one accidental ``git add -A``
would commit interpreter-version-specific bytecode that churns on
every run.  The .gitignore rule plus this tracked-file audit keep that
structurally impossible.
"""

import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _git_ls_files():
    try:
        proc = subprocess.run(
            ["git", "ls-files"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git unavailable")
    if proc.returncode != 0:
        pytest.skip("not a git checkout")
    return proc.stdout.splitlines()


def test_no_bytecode_artifacts_are_tracked():
    tracked = _git_ls_files()
    offenders = [
        f for f in tracked
        if "__pycache__" in f or f.endswith((".pyc", ".pyo"))
    ]
    assert offenders == []


def test_gitignore_covers_pycache_and_pyc():
    rules = (ROOT / ".gitignore").read_text().splitlines()
    assert "__pycache__/" in rules
    assert "*.pyc" in rules
