"""The real N-process mesh: bootstrap, point-to-point, collectives."""

import pytest

from repro.realnet.world import PROGRAMS, MiniWorld, run_world


def test_ring_token_counts_hops():
    # Two laps around 4 ranks: the token is incremented by ranks 1-3
    # each lap.
    assert run_world(4, "ring-token") == 6


def test_ring_token_two_ranks():
    assert run_world(2, "ring-token") == 2


def test_bcast_delivers_and_reduce_sums():
    result = run_world(4, "bcast-roundtrip")
    assert result["bytes"] == 2048
    assert result["total"] == 4 * result["each"]


def test_bcast_roundtrip_odd_world():
    result = run_world(3, "bcast-roundtrip")
    assert result["total"] == 3 * result["each"]


def test_barrier_storm_survives():
    assert run_world(5, "barrier-storm") == "ok"


def test_world_needs_two_ranks():
    with pytest.raises(ValueError):
        run_world(1, "barrier-storm")


def test_unknown_program_rejected():
    with pytest.raises(KeyError):
        run_world(2, "no-such-program")


def test_programs_registry_has_expected_entries():
    assert {"barrier-storm", "bcast-roundtrip", "ring-token"} <= set(PROGRAMS)


def test_miniworld_validates_peer_map():
    with pytest.raises(ValueError):
        MiniWorld(rank=0, size=3, peers={1: None})
