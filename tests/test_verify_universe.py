"""Verify tier: the acceptance sweep over every shipped library.

The headline claim of ``repro.verify``: the full REGISTRY+VARIANTS
universe — every library configuration the figures draw — model-checks
clean at probe sizes bracketing every eager/rendezvous threshold, and
a warm digest-cached pass re-explores nothing.
"""

import pytest

from repro.mplib.registry import REGISTRY, VARIANTS, get_library
from repro.verify import (
    VerdictCache,
    entry_key,
    sizes_for_spec,
    verify_universe,
)
from repro.verify.universe import default_config_for

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def report():
    return verify_universe()


def test_full_universe_has_zero_counterexamples(report):
    assert report.ok, [c.describe() for c in report.counterexamples]
    assert len(report.verdicts) == len(REGISTRY) + len(VARIANTS) == 30


def test_every_verdict_explored_real_work(report):
    for verdict in report.verdicts:
        assert verdict.path_pairs > 0, verdict.library
        assert len(verdict.sizes) >= 3, verdict.library


def test_non_recovering_specs_yield_stuck_witnesses(report):
    # Dropping a handshake message must wedge protocols that do not
    # claim recovery — and every such wedge is kept as a witness.
    total = sum(v.expected_stuck for v in report.verdicts)
    assert total > 0
    for verdict in report.verdicts:
        # Witnesses are deduplicated; the raw stuck count bounds them.
        assert verdict.witnesses, verdict.library
        assert verdict.expected_stuck >= len(verdict.witnesses)


def test_sizes_bracket_the_threshold():
    spec = get_library("mpich").spec
    t = spec.eager_threshold
    sizes = sizes_for_spec(spec)
    assert {t - 1, t, t + 1} <= set(sizes)
    assert 1 in sizes and (1 << 20) in sizes


def test_thresholdless_specs_probe_the_base_sizes():
    spec = get_library("raw-tcp").spec
    assert spec.eager_threshold is None
    assert sizes_for_spec(spec) == (1, 1024, 1 << 20)


def test_default_config_resolves_special_interconnects():
    for name in ("raw-gm", "mvich", "mpich"):
        lib = get_library(name)
        config = default_config_for(lib)
        lib.build(__import__("repro.sim", fromlist=["Engine"]).Engine(),
                  config)  # accepted, not just returned


def test_cold_then_warm_cache_roundtrip(tmp_path):
    cold = verify_universe(
        names=["mpich", "mvich"], cache_dir=tmp_path / "v"
    )
    assert cold.cache_misses == 2 and cold.cache_hits == 0
    warm = verify_universe(
        names=["mpich", "mvich"], cache_dir=tmp_path / "v"
    )
    assert warm.cache_hits == 2 and warm.cache_misses == 0
    assert all(v.from_cache for v in warm.verdicts)
    # The cached verdict is the same verdict, not a degraded copy.
    for a, b in zip(cold.verdicts, warm.verdicts):
        assert a.to_dict() == b.to_dict()


def test_entry_key_tracks_every_exploration_input():
    spec = get_library("mpich").spec
    base = entry_key("mpich", spec, (1, 2), 32, True)
    assert entry_key("mpich", spec, (1, 2), 32, True) == base
    assert entry_key("lam", spec, (1, 2), 32, True) != base
    assert entry_key("mpich", spec, (1, 3), 32, True) != base
    assert entry_key("mpich", spec, (1, 2), 16, True) != base
    assert entry_key("mpich", spec, (1, 2), 32, False) != base
    # Replay confirmation shapes the stored verdict (engine traces on
    # counterexamples), so it is part of the key; the default matches
    # positional callers.
    assert entry_key("mpich", spec, (1, 2), 32, True, with_replay=True) == base
    assert entry_key("mpich", spec, (1, 2), 32, True, with_replay=False) != base


def test_corrupt_cache_entry_degrades_to_a_miss(tmp_path):
    cache = VerdictCache(tmp_path / "v")
    spec = get_library("mpich").spec
    key = entry_key("mpich", spec, (1,), 32, True)
    cache.put(key, {"library": "mpich"})
    victim = cache._path(key)
    victim.write_text("{not json")
    assert cache.get(key) is None
    assert cache.misses == 1
