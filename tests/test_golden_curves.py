"""Golden-curve regression tier: figures 1-5 are pinned by digest.

Every curve of every paper figure, at the default NetPIPE schedule, is
hashed with the executor's canonical-walk machinery
(:func:`repro.exec.canonicalize` -> SHA-256) and compared against
``tests/golden_curves.json``.  Any change to the simulated model — an
edited overhead constant, a reordered protocol step, a float that
drifts through refactoring — changes a digest and fails tier-1 with a
message naming exactly which figure and curve moved.

Intentional model changes must re-pin the goldens:

    PYTHONPATH=src python tests/test_golden_curves.py --regen

and the diff of ``golden_curves.json`` then *is* the review artifact —
a reviewer sees precisely which curves a model edit touched.  See
docs/TESTING.md.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.exec import canonicalize
from repro.experiments import ALL_FIGURES

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_curves.json"
REGEN_HINT = (
    "If the model change is intentional, re-pin with:\n"
    "    PYTHONPATH=src python tests/test_golden_curves.py --regen\n"
    "and include the golden_curves.json diff in the review."
)


def curve_digest(result) -> str:
    """SHA-256 over the canonical form of one NetPipeResult.

    The canonical walk reprs every float exactly, so the digest moves
    iff some point of the curve (or its metadata) moves.
    """
    return hashlib.sha256(canonicalize(result).encode("utf-8")).hexdigest()


def compute_digests() -> dict:
    """fig id -> {label -> digest} over all five figures, default sizes."""
    return {
        fig.id: {
            label: curve_digest(result)
            for label, result in fig.run().items()
        }
        for fig in ALL_FIGURES
    }


def load_golden() -> dict:
    """The pinned digests (skips the tier if the file is absent)."""
    if not GOLDEN_PATH.exists():  # pragma: no cover - regen bootstrap only
        pytest.skip(f"{GOLDEN_PATH.name} not generated yet")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden():
    """Parsed golden file, shared across the module's tests."""
    return load_golden()


@pytest.fixture(scope="module")
def current():
    """Freshly computed digests, shared across the module's tests."""
    return compute_digests()


def test_golden_file_covers_every_figure_and_curve(golden):
    expected = {fig.id: sorted(fig.labels()) for fig in ALL_FIGURES}
    pinned = {
        fig_id: sorted(curves) for fig_id, curves in golden["digests"].items()
    }
    assert pinned == expected, (
        "golden_curves.json is out of sync with the figure definitions.\n"
        + REGEN_HINT
    )


def test_no_silent_model_drift(golden, current):
    drift = []
    for fig_id, curves in golden["digests"].items():
        for label, want in curves.items():
            got = current.get(fig_id, {}).get(label)
            if got != want:
                drift.append(
                    f"  {fig_id} / {label}:\n"
                    f"    - pinned  {want}\n"
                    f"    + current {got}"
                )
    assert not drift, (
        "model drift detected — these curves no longer match their pinned "
        "digests:\n" + "\n".join(drift) + "\n" + REGEN_HINT
    )


def test_digests_are_process_stable(golden):
    # Recomputing one figure must reproduce the pinned digests exactly —
    # the digest depends only on the curve, not on run order or warm-up.
    fig = ALL_FIGURES[0]
    again = {label: curve_digest(r) for label, r in fig.run().items()}
    assert again == golden["digests"][fig.id]


def _regen() -> None:
    """Rewrite golden_curves.json from the current model (reviewed diff)."""
    document = {
        "_comment": (
            "Pinned SHA-256 digests of every figure curve at the default "
            "NetPIPE schedule. Regenerate via "
            "'PYTHONPATH=src python tests/test_golden_curves.py --regen' "
            "and review the diff. See docs/TESTING.md."
        ),
        "schedule": "default",
        "digests": compute_digests(),
    }
    GOLDEN_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    total = sum(len(v) for v in document["digests"].values())
    print(f"pinned {total} curves into {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
        sys.exit(2)
