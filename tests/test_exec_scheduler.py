"""Parallel executor: ordering, parallel-vs-serial equality, reports."""

import pytest

from repro.core import netpipe_sizes, run_netpipe
from repro.core.runner import run_many
from repro.exec import SweepCache, SweepRequest, execute_sweeps
from repro.experiments import configs
from repro.experiments.figures import FIG1, FIG4
from repro.mplib import Mpich, RawTcp

CFG = configs.pc_netgear_ga620()
#: Small schedule to keep the parallel (multi-process) tests quick.
SIZES = tuple(netpipe_sizes(stop=1 << 14))

pytestmark = pytest.mark.exec_smoke


def _curve(result):
    return [(p.size, p.oneway_time) for p in result.points]


def test_requests_validate():
    with pytest.raises(ValueError):
        SweepRequest("x", RawTcp(), CFG, repeats=0)
    req = SweepRequest("x", RawTcp(), CFG, sizes=[1, 2, 3])
    assert req.sizes == (1, 2, 3)  # normalised for hashing/pickling


def test_results_come_back_in_request_order():
    requests = [
        SweepRequest("mpich", Mpich.tuned(), CFG, sizes=SIZES),
        SweepRequest("tcp", RawTcp(), CFG, sizes=SIZES),
    ]
    results, report = execute_sweeps(requests)
    assert [r.library for r in results] == ["MPICH", "raw TCP"]
    assert [s.label for s in report.stats] == ["mpich", "tcp"]
    assert report.sweeps_simulated == 2 and report.cache_hits == 0
    assert report.events_processed > 0
    assert all(s.events_processed > 0 for s in report.stats)


@pytest.mark.parametrize("fig", [FIG1, FIG4], ids=lambda f: f.id)
def test_parallel_matches_serial_bit_for_bit(fig):
    serial = fig.run(sizes=SIZES)
    parallel = fig.run(sizes=SIZES, max_workers=2)
    assert list(parallel) == list(serial)
    for label in serial:
        assert _curve(parallel[label]) == _curve(serial[label]), label


def test_executor_matches_run_netpipe():
    """The executor path and the classic one-call path agree exactly."""
    (result,), _ = execute_sweeps(
        [SweepRequest("tcp", RawTcp(), CFG, sizes=SIZES, repeats=3)]
    )
    assert _curve(result) == _curve(run_netpipe(RawTcp(), CFG, sizes=SIZES, repeats=3))


def test_warm_cache_performs_zero_simulation(tmp_path):
    cache = SweepCache(tmp_path)
    cold, cold_report = FIG1.run_with_report(sizes=SIZES, cache=cache)
    assert cold_report.sweeps_simulated == len(FIG1.entries)

    warm, warm_report = FIG1.run_with_report(sizes=SIZES, cache=cache)
    assert warm_report.sweeps_simulated == 0  # the acceptance counter
    assert warm_report.cache_hits == len(FIG1.entries)
    assert warm_report.events_processed == 0
    for label in cold:
        assert _curve(warm[label]) == _curve(cold[label]), label


def test_cache_shared_across_parallel_and_serial(tmp_path):
    cache = SweepCache(tmp_path)
    serial = FIG1.run(sizes=SIZES, cache=cache)
    parallel, report = FIG1.run_with_report(
        sizes=SIZES, max_workers=2, cache=cache
    )
    assert report.sweeps_simulated == 0
    for label in serial:
        assert _curve(parallel[label]) == _curve(serial[label]), label


def test_repeats_are_plumbed_and_fingerprinted(tmp_path):
    """repeats reaches the inner loop and distinguishes cache entries."""
    cache = SweepCache(tmp_path)
    one = FIG1.run(sizes=SIZES, repeats=1, cache=cache)
    _, report = FIG1.run_with_report(sizes=SIZES, repeats=2, cache=cache)
    assert report.sweeps_simulated == len(FIG1.entries)  # no false hits
    del one

    r1 = run_netpipe(RawTcp(), CFG, sizes=SIZES, repeats=1)
    r2 = run_many([RawTcp()], CFG, sizes=SIZES, repeats=1)["raw TCP"]
    assert _curve(r1) == _curve(r2)


def test_run_many_rejects_duplicate_labels():
    with pytest.raises(ValueError):
        run_many([RawTcp(), RawTcp()], CFG, sizes=SIZES)


def test_workers_env_override(monkeypatch):
    from repro.exec.scheduler import WORKERS_ENV, default_workers

    monkeypatch.delenv(WORKERS_ENV, raising=False)
    assert default_workers() == 1
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert default_workers() == 3
    monkeypatch.setenv(WORKERS_ENV, "0")
    with pytest.raises(ValueError):
        default_workers()


def test_workers_env_non_integer_names_the_variable(monkeypatch):
    """$REPRO_EXEC_WORKERS=auto must fail with a message, not a bare int()."""
    from repro.exec.scheduler import WORKERS_ENV, default_workers

    monkeypatch.setenv(WORKERS_ENV, "auto")
    with pytest.raises(ValueError, match=r"REPRO_EXEC_WORKERS.*'auto'"):
        default_workers()
    monkeypatch.setenv(WORKERS_ENV, " 4 ")  # whitespace still parses
    assert default_workers() == 4


def test_report_render_names_every_sweep(tmp_path):
    cache = SweepCache(tmp_path)
    FIG1.run(sizes=SIZES, cache=cache)
    _, report = FIG1.run_with_report(sizes=SIZES, cache=cache)
    text = report.render()
    for label in FIG1.labels():
        assert label in text
    assert "7 cached" in text
