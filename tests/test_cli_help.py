"""The ``python -m repro`` help surface stays honest.

The module docstring of :mod:`repro.__main__` carries a hand-written
command table; nothing stops it drifting from the argparse registry
except this audit.  Both directions are checked: every registered
subcommand appears in the table, and the table names no ghosts.
"""

import re

import pytest

import repro.__main__ as entry

pytestmark = pytest.mark.scenario

#: ``figure <id>`` documents the same subcommand as ``figure``.
TABLE_ROW = re.compile(r"^``(\w+)(?: [^`]*)?``\s+\S", re.MULTILINE)


def _documented_commands() -> set[str]:
    assert entry.__doc__, "module docstring is the help surface"
    commands = set(TABLE_ROW.findall(entry.__doc__))
    assert commands, "docstring command table not found"
    return commands


def _registered_commands() -> set[str]:
    parser = entry.build_parser()
    subactions = [
        action for action in parser._actions
        if isinstance(action, entry.argparse._SubParsersAction)
    ]
    assert len(subactions) == 1
    return set(subactions[0].choices)


def test_every_registered_command_is_documented():
    missing = _registered_commands() - _documented_commands()
    assert not missing, f"undocumented subcommands: {sorted(missing)}"


def test_every_documented_command_is_registered():
    ghosts = _documented_commands() - _registered_commands()
    assert not ghosts, f"docstring names unknown subcommands: {sorted(ghosts)}"


def test_scenario_command_is_wired():
    assert "scenario" in _registered_commands()
    # The forwarding path: `python -m repro scenario validate <spec>`.
    rc = entry.main([
        "scenario", "validate", "examples/scenarios/fig1_mpich_quiet.toml",
    ])
    assert rc == 0
