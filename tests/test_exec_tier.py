"""Tier-routing edges: auto/analytic/sim through ``execute_sweeps``.

The analytic tier is only allowed to answer where it is engine-
validated, and must never contaminate the simulated curve cache.  These
tests pin the routing table's edges: in-band requests route analytically
under ``auto``, out-of-band requests fall back to simulation (or fail
loudly under ``tier="analytic"``), cache entries stay tier-disjoint,
and the run report says which path every curve took.
"""

import dataclasses

import pytest

from repro.exec import (
    SweepCache,
    SweepExecutionError,
    SweepRequest,
    TIER_ENV,
    default_tier,
    execute_sweeps,
)
from repro.experiments.configs import pc_netgear_ga620
from repro.experiments.figures import FIG1
from repro.mplib.registry import RawTcp

pytestmark = [pytest.mark.analytic, pytest.mark.exec_smoke]


def banded_request(label: str = "raw") -> SweepRequest:
    """An in-band request: a figure pair, so its band ships pinned."""
    return SweepRequest(
        label=label, library=RawTcp(), config=pc_netgear_ga620(),
        sizes=(1, 64, 1024, 16384), repeats=1,
    )


def unbanded_request(label: str = "novel") -> SweepRequest:
    """A supported family on a config no band was ever minted for."""
    config = dataclasses.replace(pc_netgear_ga620(), switch_latency=1.1e-6)
    return SweepRequest(
        label=label, library=RawTcp(), config=config,
        sizes=(1, 64, 1024), repeats=1,
    )


def test_auto_routes_in_band_analytically_and_matches_sim():
    requests = FIG1.sweep_requests()
    sim_results, sim_report = execute_sweeps(requests, tier="sim")
    ana_results, ana_report = execute_sweeps(requests, tier="auto")

    assert sim_report.sweeps_simulated == len(requests)
    assert sim_report.sweeps_analytic == 0
    assert ana_report.sweeps_analytic == len(requests)
    assert ana_report.sweeps_simulated == 0
    assert all(s.tier == "analytic" for s in ana_report.stats)
    assert all(s.events_processed == 0 for s in ana_report.stats)

    for sim_r, ana_r in zip(sim_results, ana_results):
        assert sim_r.library == ana_r.library
        for p_sim, p_ana in zip(sim_r.points, ana_r.points):
            assert p_ana.size == p_sim.size
            assert p_ana.oneway_time == pytest.approx(
                p_sim.oneway_time, rel=1e-9
            )


def test_auto_falls_back_to_sim_for_out_of_band_config():
    results, report = execute_sweeps(
        [banded_request(), unbanded_request()], tier="auto"
    )
    assert len(results) == 2
    by_label = {s.label: s for s in report.stats}
    assert by_label["raw"].tier == "analytic"
    assert by_label["novel"].tier == "sim"
    assert by_label["novel"].events_processed > 0
    assert report.sweeps_analytic == 1
    assert report.sweeps_simulated == 1


def test_analytic_tier_demands_a_band():
    with pytest.raises(SweepExecutionError) as exc_info:
        execute_sweeps([unbanded_request()], tier="analytic")
    message = str(exc_info.value)
    assert "novel" in message
    assert "tolerance band" in message
    assert "--regen" in message  # the error must say how to mint one


def test_analytic_results_never_enter_the_sim_cache(tmp_path):
    cache = SweepCache(tmp_path / "sweeps")
    request = banded_request()

    # Fill the cache analytically, then demand simulation: the sim run
    # must find nothing — analytic entries live under their own salt.
    _, warm = execute_sweeps([request], tier="auto", cache=cache)
    assert warm.sweeps_analytic == 1
    _, sim_report = execute_sweeps([request], tier="sim", cache=cache)
    assert sim_report.cache_hits == 0
    assert sim_report.sweeps_simulated == 1

    # And the reverse: the sim entry must not shadow the analytic one.
    _, ana_report = execute_sweeps([request], tier="auto", cache=cache)
    assert ana_report.cache_hits == 1
    assert ana_report.stats[0].tier == "analytic"
    assert ana_report.stats[0].cached


def test_render_reports_per_tier_counts():
    requests = [banded_request(), unbanded_request()]
    _, report = execute_sweeps(requests, tier="auto")
    header = report.render().splitlines()[0]
    assert "1 simulated, 1 analytic, 0 cached" in header
    body = report.render()
    assert "analytic" in body  # per-sweep source column names the tier


def test_trace_refuses_the_analytic_tier():
    with pytest.raises(ValueError, match="event engine"):
        execute_sweeps([banded_request()], trace=True, tier="analytic")
    # auto is demoted to sim when tracing: a trace needs real events.
    _, report = execute_sweeps([banded_request()], trace=True, tier="auto")
    assert report.sweeps_simulated == 1
    assert "raw" in report.traces


def test_invalid_tier_rejected():
    with pytest.raises(ValueError, match="tier must be one of"):
        execute_sweeps([banded_request()], tier="warp")


def test_tier_env_default(monkeypatch):
    monkeypatch.delenv(TIER_ENV, raising=False)
    assert default_tier() == "sim"
    monkeypatch.setenv(TIER_ENV, "auto")
    assert default_tier() == "auto"
    _, report = execute_sweeps([banded_request()])
    assert report.sweeps_analytic == 1
    monkeypatch.setenv(TIER_ENV, "bogus")
    with pytest.raises(ValueError, match=TIER_ENV):
        default_tier()


def test_cli_figure_runs_on_the_analytic_tier(capsys):
    from repro.__main__ import main

    assert main(["figure", "fig1", "--tier", "analytic"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "MISS" not in out


def test_cli_tier_analytic_without_bands_exits_with_error(
    monkeypatch, tmp_path, capsys
):
    from repro.__main__ import main
    from repro.analytic import BANDS_ENV

    # An empty band store: every config is unvalidated, so demanding
    # the analytic tier must fail loudly, not silently simulate.
    monkeypatch.setenv(BANDS_ENV, str(tmp_path / "no-bands.json"))
    assert main(["figure", "fig1", "--tier", "analytic"]) == 2
    err = capsys.readouterr().err
    assert "tolerance band" in err and "error:" in err


def test_repeats_and_sizes_flow_through_the_analytic_tier():
    request = SweepRequest(
        label="r", library=RawTcp(), config=pc_netgear_ga620(),
        sizes=(1, 2, 4), repeats=5,
    )
    results, report = execute_sweeps([request], tier="analytic")
    assert report.sweeps_analytic == 1
    assert [p.size for p in results[0].points] == [1, 2, 4]
