"""Ethernet framing arithmetic."""

import pytest

from repro.net.ethernet import TCP_IP_OVERHEAD, WIRE_OVERHEAD, EthernetFraming
from repro.units import mbps, to_mbps


def test_standard_mtu_mss():
    f = EthernetFraming(1500)
    assert f.mss == 1448  # 1500 - 20 - 20 - 12 (timestamps)


def test_jumbo_mss():
    assert EthernetFraming(9000).mss == 8948


def test_payload_efficiency_improves_with_jumbo():
    std = EthernetFraming(1500)
    jumbo = EthernetFraming(9000)
    assert jumbo.payload_efficiency > std.payload_efficiency
    assert std.payload_efficiency == pytest.approx(1448 / 1538)


def test_gige_payload_rate_standard_mtu():
    # ~941 Mb/s of TCP payload on 1000 Mb/s Ethernet at MTU 1500.
    rate = EthernetFraming(1500).payload_rate(mbps(1000))
    assert to_mbps(rate) == pytest.approx(941, abs=2)


def test_segment_count_exact_boundary():
    f = EthernetFraming(1500)
    assert f.segments(1448) == 1
    assert f.segments(1449) == 2
    assert f.segments(0) == 1  # bare segment still crosses the wire


def test_segments_rejects_negative():
    with pytest.raises(ValueError):
        EthernetFraming(1500).segments(-5)


def test_mtu_too_small_rejected():
    with pytest.raises(ValueError):
        EthernetFraming(40)


def test_frame_time_small_payload_carries_full_headers():
    f = EthernetFraming(1500)
    # A 1-byte payload still drags 52 bytes of TCP/IP headers plus the
    # Ethernet frame overhead across the wire.
    t1 = f.frame_time(1, mbps(1000))
    assert t1 == pytest.approx((1 + TCP_IP_OVERHEAD + WIRE_OVERHEAD) / mbps(1000))


def test_frame_time_full_segment():
    f = EthernetFraming(1500)
    t = f.frame_time(f.mss, mbps(1000))
    assert t == pytest.approx((1500 + WIRE_OVERHEAD) / mbps(1000))


def test_wire_overhead_constant():
    assert WIRE_OVERHEAD == 38
    assert TCP_IP_OVERHEAD == 52
