"""The TCP model: pipeline stages, windowing, and the paper's anchors."""

import pytest

from repro.hw.catalog import (
    COMPAQ_DS20,
    NETGEAR_GA620,
    PENTIUM4_PC,
    SYSKONNECT_SK9843,
    TRENDNET_TEG_PCITX,
)
from repro.hw.cluster import ClusterConfig, DEFAULT_SYSCTL, TUNED_SYSCTL
from repro.net.tcp import TcpModel, TcpTuning
from repro.units import MB, kb, mbps, to_mbps, to_us, us

BIG = 8 * MB
TUNED = TcpTuning(sockbuf_request=kb(512))


def pc(nic, sysctl=TUNED_SYSCTL, **kw):
    return ClusterConfig(PENTIUM4_PC, nic, sysctl=sysctl, **kw)


# -- paper anchors (raw TCP) ---------------------------------------------------
def test_ga620_pc_reaches_550_mbps():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    assert to_mbps(m.rate(BIG)) == pytest.approx(550, abs=15)


def test_ga620_pc_latency_120us():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    assert to_us(m.latency0) == pytest.approx(120, abs=5)


def test_trendnet_pc_tuned_reaches_550_mbps():
    m = TcpModel(pc(TRENDNET_TEG_PCITX), TUNED)
    assert to_mbps(m.rate(BIG)) == pytest.approx(550, abs=15)


def test_trendnet_pc_latency_140us():
    m = TcpModel(pc(TRENDNET_TEG_PCITX), TUNED)
    assert to_us(m.latency0) == pytest.approx(140, abs=5)


def test_trendnet_default_buffers_flatten_at_290():
    """Sec. 4: 'the performance of the TrendNet GigE cards flattens out
    at 290 Mbps when the default TCP socket buffer sizes are used'."""
    m = TcpModel(pc(TRENDNET_TEG_PCITX, sysctl=DEFAULT_SYSCTL))
    assert to_mbps(m.rate(BIG)) == pytest.approx(290, abs=15)


def test_trendnet_big_buffers_roughly_double_throughput():
    """Sec. 4: 'Increasing these to 512 kB ... doubling the raw
    throughput.'"""
    default = TcpModel(pc(TRENDNET_TEG_PCITX, sysctl=DEFAULT_SYSCTL))
    tuned = TcpModel(pc(TRENDNET_TEG_PCITX), TUNED)
    ratio = tuned.rate(BIG) / default.rate(BIG)
    assert 1.6 <= ratio <= 2.3


def test_syskonnect_jumbo_ds20_reaches_900():
    cfg = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000, sysctl=TUNED_SYSCTL)
    m = TcpModel(cfg, TUNED)
    assert to_mbps(m.rate(BIG)) == pytest.approx(900, abs=25)


def test_syskonnect_jumbo_ds20_latency_48us():
    cfg = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000, sysctl=TUNED_SYSCTL)
    m = TcpModel(cfg, TUNED)
    assert to_us(m.latency0) == pytest.approx(48, abs=3)


def test_syskonnect_jumbo_pc_pci_limited_to_710():
    """Sec. 4: 'On the PCs, the 32-bit PCI bus limits the bandwidth of
    these SysKonnect cards to a maximum of 710 Mbps'."""
    m = TcpModel(pc(SYSKONNECT_SK9843).with_mtu(9000), TUNED)
    assert to_mbps(m.rate(BIG)) == pytest.approx(710, abs=20)
    assert m.bottleneck(BIG) == "pci"


def test_tcgmsg_style_32kb_buffer_on_ds20_gives_400():
    """Sec. 7: hardwired 32 kB buffer -> 400 Mb/s on SysKonnect/DS20."""
    cfg = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000, sysctl=TUNED_SYSCTL)
    m = TcpModel(cfg, TcpTuning(sockbuf_request=kb(32)))
    assert to_mbps(m.rate(BIG)) == pytest.approx(400, abs=20)


def test_raising_that_buffer_to_128kb_restores_900():
    cfg = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000, sysctl=TUNED_SYSCTL)
    m = TcpModel(cfg, TcpTuning(sockbuf_request=kb(128)))
    assert to_mbps(m.rate(BIG)) == pytest.approx(900, abs=25)


# -- model mechanics ------------------------------------------------------------
def test_messages_within_grace_not_window_limited():
    m = TcpModel(pc(TRENDNET_TEG_PCITX, sysctl=DEFAULT_SYSCTL))
    assert m.rate(kb(2)) == pytest.approx(m.pipeline_rate)
    assert m.rate(kb(64)) < m.pipeline_rate


def test_stream_time_continuous_at_grace_boundary():
    m = TcpModel(pc(TRENDNET_TEG_PCITX, sysctl=DEFAULT_SYSCTL))
    b = m.WINDOW_GRACE_BYTES
    below = m.stream_time(b)
    above = m.stream_time(b + 1)
    assert above > below
    assert above - below < us(1.0)


def test_throughput_flattens_not_humps():
    """The curve must rise monotonically to its plateau: no hump at the
    socket-buffer size (the paper's buffer-limited curves flatten)."""
    m = TcpModel(pc(TRENDNET_TEG_PCITX, sysctl=DEFAULT_SYSCTL))
    peak = m.throughput(8 * MB)
    for n in (kb(16), kb(32), kb(33), kb(64), MB):
        assert m.throughput(n) <= peak * 1.02


def test_stream_time_monotone_in_size():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    times = [m.stream_time(n) for n in (1, 100, kb(1), kb(64), MB, 8 * MB)]
    assert times == sorted(times)
    assert all(t >= 0 for t in times)


def test_transfer_time_is_latency_plus_stream():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    n = kb(100)
    assert m.transfer_time(n) == pytest.approx(m.latency0 + m.stream_time(n))


def test_progress_stall_reduces_window_rate():
    quick = TcpModel(pc(NETGEAR_GA620), TcpTuning(sockbuf_request=kb(32)))
    stalled = TcpModel(
        pc(NETGEAR_GA620),
        TcpTuning(sockbuf_request=kb(32), progress_stall=us(3000)),
    )
    assert stalled.rate(BIG) < quick.rate(BIG)


def test_mpich_5x_socket_buffer_effect():
    """Sec. 4.1: P4_SOCKBUFSIZE 32 kB -> 256 kB was 'a 5-fold increase'
    (75 -> ~375 Mb/s, before the p4 staging-copy loss)."""
    stall = us(3000)
    small = TcpModel(pc(NETGEAR_GA620), TcpTuning(kb(32), progress_stall=stall))
    large = TcpModel(pc(NETGEAR_GA620), TcpTuning(kb(256), progress_stall=stall))
    assert to_mbps(small.rate(BIG)) == pytest.approx(79, abs=8)
    ratio = large.rate(BIG) / small.rate(BIG)
    assert 4.0 <= ratio <= 8.0


def test_latency_adder_passes_through():
    base = TcpModel(pc(NETGEAR_GA620), TUNED)
    padded = TcpModel(
        pc(NETGEAR_GA620), TcpTuning(sockbuf_request=kb(512), latency_adder=us(30))
    )
    assert padded.latency0 - base.latency0 == pytest.approx(us(30))


def test_jumbo_frames_raise_rx_cpu_rate():
    std = TcpModel(pc(SYSKONNECT_SK9843), TUNED)
    jumbo = TcpModel(pc(SYSKONNECT_SK9843).with_mtu(9000), TUNED)
    assert jumbo.rx_cpu_rate > 2 * std.rx_cpu_rate


def test_bottleneck_names_window_when_limited():
    m = TcpModel(pc(TRENDNET_TEG_PCITX, sysctl=DEFAULT_SYSCTL))
    assert m.bottleneck(BIG) == "window"
    assert m.bottleneck(kb(1)) in {"wire", "pci", "tx-cpu", "rx-cpu"}


def test_tuning_validation():
    with pytest.raises(ValueError):
        TcpTuning(progress_stall=-1.0)
    with pytest.raises(ValueError):
        TcpTuning(sockbuf_request=0)


def test_throughput_increases_with_size():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    assert m.throughput(MB) > m.throughput(kb(1)) > m.throughput(8)


def test_zero_byte_stream_time_is_zero():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    assert m.stream_time(0) == 0.0
    with pytest.raises(ValueError):
        m.stream_time(-1)


def test_latency_components_sum_to_latency0():
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    comps = m.latency_components()
    assert sum(comps.values()) == pytest.approx(m.latency0)


def test_latency_is_mostly_driver_path_on_2_4_kernels():
    """Sec. 4: 'The latencies are poor under the new Linux 2.4.x
    kernel' — the dominant term is the driver/kernel path, not wire
    serialisation or syscalls."""
    m = TcpModel(pc(NETGEAR_GA620), TUNED)
    comps = m.latency_components()
    assert comps["wire+driver"] > 0.5 * m.latency0
    assert comps["serialisation"] < 0.05 * m.latency0


def test_library_component_reflects_adder():
    padded = TcpModel(
        pc(NETGEAR_GA620), TcpTuning(sockbuf_request=kb(512), latency_adder=us(30))
    )
    assert padded.latency_components()["library"] == pytest.approx(us(30))
