"""Fixture-driven unit tests of every repro.check rule family.

Each rule has at least one known-bad fixture (must fire, at the right
file:line) and one known-good fixture (must stay silent).  Fixtures
declare their pretend package with a ``# repro: module=...`` directive,
which is how policy scoping is exercised from outside src/.
"""

from pathlib import Path

import pytest

from repro.check import analyze_file, analyze_source

pytestmark = pytest.mark.check

FIXTURES = Path(__file__).resolve().parent / "check_fixtures"


def rules_with_lines(name):
    findings = analyze_file(FIXTURES / name)
    return [(f.rule, f.line) for f in findings]


def rules(name):
    return [rule for rule, _ in rules_with_lines(name)]


def fixture_line(name, needle):
    text = (FIXTURES / name).read_text().splitlines()
    for lineno, line in enumerate(text, start=1):
        if needle in line:
            return lineno
    raise AssertionError(f"{needle!r} not found in {name}")


# -- determinism --------------------------------------------------------------

def test_determinism_bad_fixture_fires_every_rule():
    found = rules_with_lines("det_bad.py")
    assert ("det-wallclock", fixture_line("det_bad.py", "clock.time()")) in found
    assert ("det-wallclock", fixture_line("det_bad.py", "perf_counter()")) in found
    assert ("det-wallclock", fixture_line("det_bad.py", "datetime.now()")) in found
    assert ("det-random", fixture_line("det_bad.py", "random.random()")) in found
    assert ("det-entropy", fixture_line("det_bad.py", "uuid.uuid4()")) in found
    assert ("det-entropy", fixture_line("det_bad.py", "os.urandom(8)")) in found
    assert ("det-env", fixture_line("det_bad.py", "REPRO_SECRET_KNOB")) in found


def test_determinism_flags_use_sites_not_imports():
    # Seven uses, no findings on the import lines themselves.
    found = rules_with_lines("det_bad.py")
    assert len(found) == 7
    import_lines = {
        fixture_line("det_bad.py", "import os"),
        fixture_line("det_bad.py", "import time as clock"),
        fixture_line("det_bad.py", "from time import perf_counter"),
    }
    assert not import_lines & {line for _, line in found}


def test_determinism_good_fixture_is_clean():
    assert rules("det_good.py") == []


def test_environ_chain_is_flagged_once():
    # 'os.environ.get' must produce one finding, not one per link.
    source = (
        "# repro: module=repro.sim.chain\n"
        "import os\n"
        "x = os.environ.get('A', 'b')\n"
    )
    findings = analyze_source(source, path="chain.py")
    assert [f.rule for f in findings] == ["det-env"]


# -- purity -------------------------------------------------------------------

def test_purity_bad_fixture():
    found = rules_with_lines("purity_bad.py")
    assert ("pure-socket", fixture_line("purity_bad.py", "import socket")) in found
    assert (
        "pure-subprocess",
        fixture_line("purity_bad.py", "import subprocess"),
    ) in found
    assert ("pure-thread", fixture_line("purity_bad.py", "import threading")) in found
    assert ("pure-open", fixture_line("purity_bad.py", "with open(path)")) in found
    assert len(found) == 4


def test_purity_good_fixture_is_clean():
    # Docstrings and identifiers mentioning sockets must not trip an
    # AST-based rule (the reason grep was never good enough here).
    assert rules("purity_good.py") == []


def test_core_io_open_exemption():
    assert rules("purity_coreio.py") == []


# -- yield discipline ---------------------------------------------------------

def test_yield_bad_fixture_flags_all_three_shapes():
    found = rules_with_lines("yield_bad.py")
    assert [rule for rule, _ in found] == ["yield-discard"] * 3
    lines = {line for _, line in found}
    assert fixture_line("yield_bad.py", "sender(ep, size)  # yield-discard") in lines
    assert fixture_line("yield_bad.py", "self._drain()  # yield-discard") in lines
    assert fixture_line("yield_bad.py", "helper()  # yield-discard") in lines


def test_yield_good_fixture_is_clean():
    assert rules("yield_good.py") == []


def test_yield_rule_applies_outside_repro_packages():
    # yield_bad.py has no module directive and no repro/ in its path:
    # the rule is globally scoped and must still fire.
    assert rules("yield_bad.py") != []


# -- cache safety -------------------------------------------------------------

def test_cache_bad_fixture():
    found = rules_with_lines("cache_bad.py")
    assert ("cache-classvar", fixture_line("cache_bad.py", "ClassVar[int]")) in found
    assert ("cache-initvar", fixture_line("cache_bad.py", "InitVar[float]")) in found
    assert (
        "cache-classattr",
        fixture_line("cache_bad.py", "progress_stall = 0.000904"),
    ) in found
    assert len(found) == 3


def test_cache_good_fixture_is_clean():
    assert rules("cache_good.py") == []


# -- suppressions and policy exemptions ---------------------------------------

def test_inline_suppressions():
    found = rules_with_lines("suppressed.py")
    # Trailing and standalone allow comments silence their rule; an
    # allow[] naming a different rule does not — and, since it then
    # suppresses nothing, it is itself flagged by the hygiene rule.
    mismatched = fixture_line("suppressed.py", "allow[pure-socket]")
    assert found == [
        ("det-wallclock", mismatched),
        ("unused-suppression", mismatched),
    ]


def test_realnet_policy_exemption():
    assert rules("exempt_realnet.py") == []


def test_scheduler_policy_exemption():
    assert rules("exempt_scheduler.py") == []


def test_same_code_outside_exempt_package_fires():
    source = (FIXTURES / "exempt_realnet.py").read_text().replace(
        "# repro: module=repro.realnet.fixture",
        "# repro: module=repro.net.fixture",
    )
    findings = analyze_source(source, path="exempt_realnet.py")
    assert {f.rule for f in findings} == {"pure-socket", "det-wallclock"}


# -- driver -------------------------------------------------------------------

def test_parse_error_is_a_finding():
    findings = analyze_source("def broken(:\n", path="broken.py")
    assert [f.rule for f in findings] == ["parse-error"]
    assert findings[0].line >= 1


# -- protocol-flow ------------------------------------------------------------

def test_proto_unmatched_fires_on_deleted_cts_leg():
    name = "proto_unmatched_bad.py"
    found = rules_with_lines(name)
    # The semantic verify-* family sees the same bug; the syntactic
    # verdict must be exactly the one seeded marker.
    assert [f for f in found if f[0].startswith("proto-")] == [
        ("proto-unmatched", fixture_line(name, "# proto-unmatched: no reply leg")),
    ]
    assert "verify-deadlock" in {rule for rule, _ in found}


def test_proto_deadlock_fires_on_symmetric_blocking_recv():
    name = "proto_deadlock_bad.py"
    found = rules_with_lines(name)
    assert [f for f in found if f[0].startswith("proto-")] == [
        ("proto-deadlock", fixture_line(name, "# proto-deadlock: recv-first")),
    ]


def test_proto_dead_branch_fires_on_unsatisfiable_spec_guard():
    name = "proto_deadbranch_bad.py"
    found = rules_with_lines(name)
    assert found == [
        ("proto-dead-branch",
         fixture_line(name, "# proto-dead-branch: never satisfiable")),
    ]


def test_paired_endpoint_with_reachable_branches_is_clean():
    assert rules("proto_good.py") == []


def test_protocol_rules_scope_to_mplib_only():
    # The identical broken endpoint declared under repro.analysis is out
    # of protocol-flow's policy scope and must stay silent.
    source = (FIXTURES / "proto_unmatched_bad.py").read_text().replace(
        "# repro: module=repro.mplib.fixture_proto_unmatched_bad",
        "# repro: module=repro.analysis.fixture_proto_unmatched_bad",
    )
    findings = analyze_source(source, path="proto_unmatched_bad.py")
    assert findings == []


# -- dimension ----------------------------------------------------------------

def test_dim_unconverted_fires_on_raw_mbps_constant():
    name = "dim_mbps_bad.py"
    found = rules_with_lines(name)
    assert found == [
        ("dim-unconverted",
         fixture_line(name, "# dim-unconverted: raw paper Mbps constant")),
    ]


def test_dim_mixed_fires_on_seconds_plus_bytes():
    name = "dim_mixed_bad.py"
    found = rules_with_lines(name)
    assert found == [
        ("dim-mixed", fixture_line(name, "# dim-mixed: seconds + bytes")),
    ]


def test_converted_constants_and_consistent_algebra_are_clean():
    assert rules("dim_good.py") == []


def test_dimension_rules_scope_excludes_reporting():
    source = (FIXTURES / "dim_mbps_bad.py").read_text().replace(
        "# repro: module=repro.net.fixture_dim_mbps_bad",
        "# repro: module=repro.reporting.fixture_dim_mbps_bad",
    )
    findings = analyze_source(source, path="dim_mbps_bad.py")
    assert findings == []
