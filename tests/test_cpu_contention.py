"""Opt-in single-CPU contention: overlap is not free on a uniprocessor."""

import pytest

from repro.cluster import build_world, run_ranks
from repro.experiments import configs
from repro.hw.catalog import COMPAQ_DS20, PENTIUM4_PC, SYSKONNECT_SK9843
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.mplib import Mpich, MpLite
from repro.sim import Engine
from repro.units import MB

GA620 = configs.pc_netgear_ga620()


def overlap_compute_wall(library, config, contention, nbytes=2 * MB, compute=10e-3):
    def program(comm):
        peer = 1 - comm.rank
        req = (
            comm.isend(peer, nbytes)
            if comm.rank == 0
            else comm.irecv(peer, nbytes)
        )
        t0 = comm.engine.now
        yield from comm.compute(compute)
        wall = comm.engine.now - t0
        yield from comm.wait(req)
        return wall

    engine = Engine()
    comms = build_world(engine, library, config, 2, cpu_contention=contention)
    return run_ranks(engine, comms, program)


def test_default_off_preserves_ideal_overlap():
    walls = overlap_compute_wall(MpLite(), GA620, contention=False)
    assert walls == pytest.approx([10e-3, 10e-3])


def test_single_cpu_receiver_pays_the_full_stack():
    """GigE receive eats ~a whole CPU; the overlapped receiver's
    compute roughly doubles."""
    walls = overlap_compute_wall(MpLite(), GA620, contention=True)
    sender, receiver = walls
    assert 1.3 < sender / 10e-3 < 1.8  # tx stack ~half a CPU
    assert 1.9 < receiver / 10e-3 < 2.1  # rx stack ~a full CPU


def test_paper_host_cpu_counts():
    assert PENTIUM4_PC.cpus == 1
    assert COMPAQ_DS20.cpus == 2  # "dual-processor Compaq DS20"


def test_dual_cpu_ds20_exempt():
    """The DS20's second processor absorbs the stack work."""
    cfg = ClusterConfig(COMPAQ_DS20, SYSKONNECT_SK9843, mtu=9000, sysctl=TUNED_SYSCTL)
    walls = overlap_compute_wall(MpLite(), cfg, contention=True)
    assert walls == pytest.approx([10e-3, 10e-3])


def test_blocking_library_unaffected():
    """MPICH never overlaps, so there is nothing to contend with —
    its compute is clean either way (the transfer just waits)."""
    a = overlap_compute_wall(Mpich.tuned(), GA620, contention=False)
    b = overlap_compute_wall(Mpich.tuned(), GA620, contention=True)
    assert a == pytest.approx(b)
    assert a[0] == pytest.approx(10e-3)


def test_contention_released_after_wait():
    """Once the transfer is waited out, later compute runs clean."""

    def program(comm):
        peer = 1 - comm.rank
        req = (
            comm.isend(peer, 2 * MB) if comm.rank == 0 else comm.irecv(peer, 2 * MB)
        )
        yield from comm.wait(req)
        t0 = comm.engine.now
        yield from comm.compute(5e-3)
        return comm.engine.now - t0

    engine = Engine()
    comms = build_world(engine, MpLite(), GA620, 2, cpu_contention=True)
    walls = run_ranks(engine, comms, program)
    assert walls == pytest.approx([5e-3, 5e-3])


def test_host_cpus_validation():
    from repro.hw.host import HostModel
    from repro.hw.pci import PCI_32_33

    with pytest.raises(ValueError):
        HostModel(
            name="bad",
            cpu_ghz=1.0,
            memcpy_bandwidth=1e8,
            syscall_time=0,
            interrupt_time=0,
            sched_wakeup_time=0,
            pci=PCI_32_33,
            cpus=0,
        )
