"""Real-socket backend: framing, transport, MiniMP, and the live sweep."""

import threading

import pytest

from repro.core import netpipe_sizes
from repro.realnet import (
    MiniMP,
    MiniMPConfig,
    SocketConfig,
    connect_pair,
    run_real_netpipe,
)
from repro.realnet.framing import (
    HEADER_SIZE,
    KIND_CTS,
    KIND_DATA,
    KIND_RTS,
    FramingError,
    MessageHeader,
)
from repro.realnet.minimp import PeerClosed
from repro.units import kb


# -- framing ------------------------------------------------------------------
def test_header_roundtrip():
    h = MessageHeader(kind=KIND_DATA, tag=7, length=1234)
    assert MessageHeader.unpack(h.pack()) == h


def test_header_pack_size():
    assert len(MessageHeader(KIND_RTS, 0, 0).pack()) == HEADER_SIZE


def test_header_rejects_bad_kind():
    with pytest.raises(ValueError):
        MessageHeader(kind=99, tag=0, length=0).pack()


def test_header_unpack_rejects_bad_magic():
    raw = b"XXXX" + MessageHeader(KIND_DATA, 0, 0).pack()[4:]
    with pytest.raises(FramingError):
        MessageHeader.unpack(raw)


def test_header_rejects_oversized_fields():
    with pytest.raises(ValueError):
        MessageHeader(KIND_DATA, 0, 1 << 33).pack()


# -- transport -----------------------------------------------------------------
def test_connect_pair_roundtrip():
    a, b = connect_pair()
    try:
        a.send(KIND_DATA, tag=5, payload=b"hello")
        header, payload = b.recv()
        assert header.kind == KIND_DATA and header.tag == 5
        assert payload == b"hello"
    finally:
        a.close()
        b.close()


def test_connect_pair_large_payload():
    a, b = connect_pair()
    try:
        blob = bytes(range(256)) * 4096  # 1 MB
        done = {}

        def reader():
            _, payload = b.recv()
            done["payload"] = payload

        t = threading.Thread(target=reader)
        t.start()
        a.send(KIND_DATA, tag=0, payload=blob)
        t.join(timeout=10)
        assert done["payload"] == blob
    finally:
        a.close()
        b.close()


def test_socket_config_sets_buffers():
    a, b = connect_pair(SocketConfig(sockbuf=kb(64)))
    try:
        snd, rcv = a.effective_bufsizes()
        # Linux doubles the requested value for bookkeeping; accept any
        # grant at least as large as the request.
        assert snd >= kb(64) and rcv >= kb(64)
    finally:
        a.close()
        b.close()


def test_socket_config_rejects_bad_bufsize():
    with pytest.raises(ValueError):
        connect_pair(SocketConfig(sockbuf=0))


# -- MiniMP ---------------------------------------------------------------------
def minimp_pair(threshold=kb(64)):
    a, b = connect_pair()
    cfg = MiniMPConfig(eager_threshold=threshold)
    return MiniMP(a, cfg), MiniMP(b, cfg)


def run_peer(fn):
    t = threading.Thread(target=fn)
    t.start()
    return t


def test_minimp_eager_roundtrip():
    a, b = minimp_pair()
    try:
        got = {}
        t = run_peer(lambda: got.update(data=b.recv(5)))
        a.send(b"eager")
        t.join(timeout=10)
        assert got["data"] == b"eager"
    finally:
        a.close()
        b.close()


def test_minimp_rendezvous_roundtrip():
    a, b = minimp_pair(threshold=kb(1))
    try:
        blob = b"x" * kb(256)
        got = {}
        t = run_peer(lambda: got.update(data=b.recv(len(blob))))
        a.send(blob)  # >= threshold: RTS/CTS handshake happens inside
        t.join(timeout=10)
        assert got["data"] == blob
    finally:
        a.close()
        b.close()


def test_minimp_tag_matching_queues_unexpected():
    a, b = minimp_pair()
    try:
        got = {}

        def receiver():
            got["second"] = b.recv(6, tag=2)
            got["first"] = b.recv(5, tag=1)

        t = run_peer(receiver)
        a.send(b"first", tag=1)
        a.send(b"second", tag=2)
        t.join(timeout=10)
        assert got == {"second": b"second", "first": b"first"}
        assert b.staging_copies >= 1  # the out-of-order message staged
    finally:
        a.close()
        b.close()


def test_minimp_always_eager_mode():
    a, b = minimp_pair(threshold=None)
    try:
        blob = b"y" * kb(128)
        got = {}
        t = run_peer(lambda: got.update(data=b.recv(len(blob))))
        a.send(blob)
        t.join(timeout=10)
        assert got["data"] == blob
    finally:
        a.close()
        b.close()


def test_minimp_close_raises_peerclosed():
    a, b = minimp_pair()
    a.close()
    with pytest.raises(PeerClosed):
        b.recv(10)
    b.close()


def test_minimp_config_validation():
    with pytest.raises(ValueError):
        MiniMPConfig(eager_threshold=0)


# -- live two-process sweep -------------------------------------------------------
def test_real_netpipe_smoke():
    sizes = netpipe_sizes(stop=kb(64))
    r = run_real_netpipe(sizes=sizes)
    assert len(r) == len(sizes)
    assert r.latency_us > 0
    assert r.max_mbps > 10  # loopback is comfortably faster than this
    # Throughput grows with message size on loopback.
    assert r.mbps_at(kb(64)) > r.mbps_at(64)


def test_real_netpipe_rendezvous_vs_eager():
    """Both protocol modes complete and measure sanely over loopback."""
    sizes = netpipe_sizes(stop=kb(256))
    eager = run_real_netpipe(sizes=sizes, eager_threshold=None)
    rndv = run_real_netpipe(sizes=sizes, eager_threshold=kb(32))
    assert eager.plateau_mbps > 10 and rndv.plateau_mbps > 10


# -- failure injection -----------------------------------------------------------
def test_garbage_bytes_raise_framing_error():
    a, b = connect_pair()
    try:
        a.sock.sendall(b"\x00" * 16)  # not a valid header
        with pytest.raises(FramingError):
            b.recv()
    finally:
        a.close()
        b.close()


def test_truncated_header_raises_connection_error():
    a, b = connect_pair()
    try:
        a.sock.sendall(b"MPRr\x00")  # 5 of 16 header bytes, then close
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
    finally:
        b.close()


def test_truncated_payload_raises_connection_error():
    from repro.realnet.framing import MessageHeader

    a, b = connect_pair()
    try:
        header = MessageHeader(kind=KIND_DATA, tag=0, length=1000).pack()
        a.sock.sendall(header + b"x" * 10)  # promise 1000, deliver 10
        a.close()
        with pytest.raises(ConnectionError):
            b.recv()
    finally:
        b.close()
