"""Packet loss and retransmission in the packet-level TCP model."""

import pytest

from repro.experiments import configs
from repro.net.tcp import TcpTuning
from repro.net.tcp_packet import PacketTcpTransfer
from repro.sim import Engine
from repro.units import MB, kb

GA620 = configs.pc_netgear_ga620()
TUNED = TcpTuning(sockbuf_request=kb(512))


def run_lossy(loss, size=2 * MB, seed=1):
    engine = Engine()
    t = PacketTcpTransfer(engine, GA620, TUNED, loss_rate=loss, loss_seed=seed)
    return t.run(size)


def test_zero_loss_drops_nothing():
    stats = run_lossy(0.0)
    assert stats.segments_dropped == 0
    assert stats.retransmissions == 0


def test_loss_rate_validation():
    engine = Engine()
    with pytest.raises(ValueError):
        PacketTcpTransfer(engine, GA620, TUNED, loss_rate=1.0)
    with pytest.raises(ValueError):
        PacketTcpTransfer(engine, GA620, TUNED, loss_rate=-0.1)


def test_lossy_transfer_completes_with_all_bytes():
    stats = run_lossy(0.02)
    assert stats.segments_dropped > 0
    assert stats.completion_time > 0  # terminated — every byte recovered


def test_retransmissions_track_drops():
    """Reno: roughly one retransmit per loss event, plus the odd RTO
    backstop — not a retransmission storm."""
    stats = run_lossy(0.01)
    assert stats.retransmissions >= stats.segments_dropped
    assert stats.retransmissions < 3 * stats.segments_dropped + 5


def test_throughput_degrades_monotonically_with_loss():
    rates = [run_lossy(l).throughput for l in (0.0, 0.001, 0.01, 0.05)]
    assert rates == sorted(rates, reverse=True)
    # Even 0.1% loss costs a measurable fraction (window halvings).
    assert rates[1] < 0.9 * rates[0]
    # 5% loss is catastrophic — the GA622 "poor even for raw TCP" class.
    assert rates[3] < 0.15 * rates[0]


def test_loss_pattern_deterministic_per_seed():
    a = run_lossy(0.01, seed=5)
    b = run_lossy(0.01, seed=5)
    assert a.completion_time == b.completion_time
    assert a.segments_dropped == b.segments_dropped


def test_different_seeds_different_patterns():
    a = run_lossy(0.01, seed=5)
    b = run_lossy(0.01, seed=6)
    assert (
        a.completion_time != b.completion_time
        or a.segments_dropped != b.segments_dropped
    )


def test_dropped_segments_do_not_inflate_goodput():
    """Throughput counts application bytes once, however many times a
    segment crossed the wire."""
    stats = run_lossy(0.02)
    assert stats.bytes_total == 2 * MB
    wire_segments = stats.segments_sent + stats.retransmissions
    assert wire_segments > stats.segments_sent
