#!/usr/bin/env python
"""The cluster admin's regression workflow: baseline, change, diff.

The paper's lesson is that defaults drift and drivers change; the
defence is keeping a NetPIPE baseline and re-measuring after every
system change.  This example plays out the classic incident:

1. measure and store a baseline curve (tuned system);
2. an OS reinstall silently resets net.core.rmem_max/wmem_max;
3. the next measurement is diffed against the stored baseline and the
   regression is caught, localised to large messages, and attributed.

Run:  python examples/regression_check.py
"""

import tempfile
from pathlib import Path

from repro.core import run_netpipe
from repro.core.io import compare_to_baseline, load_result, save_netpipe_out, save_result
from repro.experiments import configs
from repro.mplib import RawTcp


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-regression-"))
    baseline_path = workdir / "baseline.json"

    print("Day 0: tuned system (512 KB socket buffers on the TrendNet cards)")
    tuned = run_netpipe(RawTcp(), configs.pc_trendnet())
    save_result(tuned, baseline_path)
    save_netpipe_out(tuned, workdir / "baseline.np.out")
    print(f"  baseline stored: {baseline_path}")
    print(f"  latency {tuned.latency_us:.1f} us, peak {tuned.max_mbps:.1f} Mb/s\n")

    print("Day 30: after an OS reinstall (sysctls silently back to defaults)")
    regressed = run_netpipe(RawTcp(), configs.pc_trendnet(tuned=False))
    report = compare_to_baseline(load_result(baseline_path), regressed)
    print(report.render())

    worst = min(report.regressions, key=lambda r: r[2] / r[1], default=None)
    if worst:
        size, base, cur = worst
        print(
            f"\nDiagnosis: worst loss at {size} B ({base:.0f} -> {cur:.0f} "
            f"Mb/s), small messages unaffected -> a throughput/window "
            f"problem, not a latency problem.  Check the socket-buffer "
            f"sysctls first (the paper, Sec. 4)."
        )

    print("\nDay 30, after restoring /etc/sysctl.conf:")
    fixed = run_netpipe(RawTcp(), configs.pc_trendnet())
    report = compare_to_baseline(load_result(baseline_path), fixed)
    print(report.render())


if __name__ == "__main__":
    main()
