#!/usr/bin/env python
"""See the progress engines: ASCII timelines of a halo-exchange step.

Runs one halo-exchange iteration under MP_Lite (SIGIO progress) and
MPICH (blocking p4) with the tracer attached, and prints each rank's
activity lane.  The difference the paper predicts in prose — "a message
progress thread ... will keep data flowing more readily" — is visible
as compute (#) overlapping the in-flight faces for MP_Lite, versus the
wait (w) tail MPICH serialises after its compute.

Run:  python examples/trace_timelines.py
"""

from repro.cluster import Tracer, build_world, run_ranks
from repro.experiments import configs
from repro.mplib import Mpich, MpLite
from repro.sim import Engine
from repro.units import kb


def halo_step(comm):
    """One 4-rank halo iteration: 4 faces in flight, then compute."""
    neighbours = [r for r in range(comm.size) if r != comm.rank]
    sends = [comm.isend(peer, kb(256)) for peer in neighbours]
    recvs = [comm.irecv(peer, kb(256)) for peer in neighbours]
    yield from comm.compute(8e-3)
    yield from comm.waitall(recvs)
    yield from comm.waitall(sends)
    yield from comm.barrier()


def main() -> None:
    for lib in (MpLite(), Mpich.tuned()):
        tracer = Tracer()
        engine = Engine()
        comms = build_world(
            engine, lib, configs.pc_netgear_ga620(), 4, tracer=tracer
        )
        run_ranks(engine, comms, halo_step)
        print(f"=== {lib.display_name} "
              f"({'SIGIO progress' if lib.progress_independent else 'blocking p4'}) ===")
        print(tracer.render_timeline(width=70))
        by_kind = tracer.time_by_kind(0)
        total = sum(by_kind.values())
        print(
            "rank 0 budget: "
            + ", ".join(f"{k} {100 * v / total:.0f}%" for k, v in sorted(by_kind.items()))
        )
        print()


if __name__ == "__main__":
    main()
