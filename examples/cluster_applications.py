#!/usr/bin/env python
"""Beyond ping-pong: application workloads on a simulated cluster.

The paper warns that NetPIPE numbers are an upper bound and predicts
that progress engines (MPI/Pro's thread, MP_Lite's SIGIO handler) "will
keep data flowing more readily" in real applications.  This example
runs three application patterns on a 4-8 rank simulated GigE cluster
and shows exactly where each library's NetPIPE-invisible behaviour
bites:

* overlap probe     — isend / compute / wait
* 2-D halo exchange — the era's canonical stencil workload
* task farm         — master/worker, latency- and daemon-bound

Run:  python examples/cluster_applications.py
"""

from repro.apps import run_halo_exchange, run_overlap_probe, run_task_farm
from repro.experiments import configs
from repro.mplib import LamMpi, Mpich, MpiPro, MpLite, Pvm


def main() -> None:
    ga620 = configs.pc_netgear_ga620()
    libs = [MpLite(), MpiPro.tuned(), Mpich.tuned(), LamMpi.tuned(), Pvm.tuned()]

    print("Overlap efficiency (1 = compute fully hides communication):")
    for lib in libs:
        r = run_overlap_probe(lib, ga620)
        bar = "#" * int(30 * r.overlap_efficiency)
        print(f"  {lib.display_name[:24]:26s} {r.overlap_efficiency:5.2f}  {bar}")

    print("\nHalo exchange, 4 ranks, 256x256 doubles per rank:")
    print(f"  {'library':26s} {'us/iter':>9} {'parallel eff':>13}")
    for lib in libs:
        r = run_halo_exchange(lib, ga620, nranks=4)
        print(
            f"  {lib.display_name[:24]:26s} {1e6 * r.time_per_iteration:9.1f} "
            f"{r.parallel_efficiency:13.2f}"
        )

    print("\nTask farm (1 master + 4 workers, 40 tasks of 2 ms):")
    farm_libs = libs + [Pvm(), LamMpi.with_daemons()]
    names = [l.display_name for l in libs] + ["PVM via pvmd", "LAM via lamd"]
    for name, lib in zip(names, farm_libs):
        r = run_task_farm(lib, ga620)
        print(f"  {name[:26]:28s} {r.tasks_per_second:7.0f} tasks/s "
              f"(efficiency {r.farm_efficiency:.2f})")

    print(
        "\nReading: NetPIPE ranks these libraries within ~25% of each "
        "other, but the blocking-progress designs lose a further chunk "
        "in overlap-dependent workloads, and daemon routing — harmless "
        "in a bandwidth test — halves a latency-bound task farm."
    )


if __name__ == "__main__":
    main()
