#!/usr/bin/env python
"""Quickstart: one NetPIPE sweep, three lines of API.

Runs the paper's headline comparison — MPICH vs raw TCP on the Netgear
GA620 Gigabit Ethernet cards between two Pentium-4 PCs — and prints the
curve, the latency, and where the 25-30 % p4 staging-copy loss comes
from.

Run:  python examples/quickstart.py
"""

from repro import get_library, run_netpipe
from repro.core.report import ascii_profile, format_result
from repro.experiments import configs


def main() -> None:
    config = configs.pc_netgear_ga620()

    raw = run_netpipe(get_library("raw-tcp"), config)
    mpich = run_netpipe(get_library("mpich"), config)

    print(format_result(mpich, every=8))
    print()
    print(ascii_profile(mpich))
    print()
    print(f"raw TCP : {raw.latency_us:6.1f} us latency, {raw.max_mbps:6.1f} Mb/s peak")
    print(f"MPICH   : {mpich.latency_us:6.1f} us latency, {mpich.max_mbps:6.1f} Mb/s peak")
    loss = 1 - mpich.max_mbps / raw.max_mbps
    print(
        f"\nMPICH delivers {100 * (1 - loss):.0f}% of raw TCP — the paper's "
        f"25-30% loss from the p4 device's buffered-receive memcpy."
    )


if __name__ == "__main__":
    main()
