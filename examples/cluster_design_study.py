#!/usr/bin/env python
"""Designing a 16-node cluster in 2002: what should the network cost?

The paper prices every NIC because that was the real question: "Custom
hardware, while expensive, does provide better performance than
Gigabit Ethernet" — but per dollar?  This study builds four 16-node
bills of materials from the catalog's (paper-quoted) prices, runs the
same two workloads on each, and reports performance per interconnect
dollar.

Run:  python examples/cluster_design_study.py
"""

from repro.analysis import cluster_bill
from repro.apps import run_halo_exchange, run_task_farm
from repro.hw.catalog import (
    GIGANET_CLAN,
    MYRINET_PCI64A,
    NETGEAR_GA620,
    TRENDNET_TEG_PCITX,
)
from repro.hw.cluster import ClusterConfig, TUNED_SYSCTL
from repro.hw.catalog import PENTIUM4_PC
from repro.mplib import MpichGm, MpLite, Mvich
from repro.units import us

NODES = 16


def main() -> None:
    designs = [
        ("TrendNet GigE (tuned)", TRENDNET_TEG_PCITX, MpLite(),
         ClusterConfig(PENTIUM4_PC, TRENDNET_TEG_PCITX, sysctl=TUNED_SYSCTL,
                       back_to_back=False)),
        ("Netgear GA620 GigE", NETGEAR_GA620, MpLite(),
         ClusterConfig(PENTIUM4_PC, NETGEAR_GA620, sysctl=TUNED_SYSCTL,
                       back_to_back=False)),
        ("Myrinet + MPICH-GM", MYRINET_PCI64A, MpichGm(),
         ClusterConfig(PENTIUM4_PC, MYRINET_PCI64A, back_to_back=False)),
        ("Giganet + MVICH", GIGANET_CLAN, Mvich.tuned(),
         ClusterConfig(PENTIUM4_PC, GIGANET_CLAN, back_to_back=False)),
    ]

    print(f"16-node cluster designs (hosts ${1500 * NODES:,.0f} in all cases)\n")
    print(f"{'design':22} {'net $':>8} {'halo eff':>9} {'farm t/s':>9} "
          f"{'t/s per net-k$':>15}")
    for label, nic, lib, cfg in designs:
        bill = cluster_bill(nic, NODES)
        halo = run_halo_exchange(lib, cfg, nranks=NODES)
        farm = run_task_farm(lib, cfg, nranks=NODES, tasks=4 * NODES,
                             work_per_task=us(1000))
        per_kd = farm.tasks_per_second / (bill.interconnect_total / 1000)
        print(
            f"{label:22} {bill.interconnect_total:>8,.0f} "
            f"{halo.parallel_efficiency:>9.2f} {farm.tasks_per_second:>9.0f} "
            f"{per_kd:>15.0f}"
        )
    print(
        "\nThe paper's conclusion, in dollars: the proprietary networks win "
        "absolute performance, the tuned commodity cards win performance "
        "per network dollar — provided someone does the tuning."
    )


if __name__ == "__main__":
    main()
