#!/usr/bin/env python
"""Write your own parallel program against the communicator API.

Everything in :mod:`repro.apps` is built from the same five verbs —
``send``/``recv``/``isend``/``wait``/``compute`` plus the collectives —
and so can your own workload.  This example implements a distributed
conjugate-gradient-shaped iteration (matvec halo + two allreduces per
step, the communication skeleton of every Krylov solver) from scratch
and compares the libraries on it.

Run:  python examples/custom_rank_program.py
"""

from repro.cluster import build_world, run_ranks
from repro.experiments import configs
from repro.mplib import Mpich, MpiPro, MpLite, RawGm
from repro.sim import Engine
from repro.units import kb


def cg_like_program(iterations=20, halo_bytes=kb(32), dot_bytes=8,
                    matvec_seconds=1.2e-3, axpy_seconds=0.4e-3):
    """A CG iteration skeleton: halo exchange, matvec, two dot-product
    allreduces, vector updates."""

    def program(comm):
        left = (comm.rank - 1) % comm.size
        right = (comm.rank + 1) % comm.size
        yield from comm.barrier()
        t0 = comm.engine.now
        for _ in range(iterations):
            # 1-D matvec halo: exchange boundary strips both ways.
            sends = [comm.isend(left, halo_bytes), comm.isend(right, halo_bytes)]
            recvs = [comm.irecv(left, halo_bytes), comm.irecv(right, halo_bytes)]
            yield from comm.compute(matvec_seconds)  # interior matvec
            yield from comm.waitall(recvs)
            yield from comm.waitall(sends)
            # Two dot products (alpha, beta): tiny latency-bound allreduces.
            yield from comm.allreduce(dot_bytes)
            yield from comm.compute(axpy_seconds)
            yield from comm.allreduce(dot_bytes)
        yield from comm.barrier()
        return (comm.engine.now - t0) / iterations

    return program


def main() -> None:
    ga620 = configs.pc_netgear_ga620()
    cases = [
        ("MP_Lite / GigE", MpLite(), ga620),
        ("MPI/Pro / GigE", MpiPro.tuned(), ga620),
        ("MPICH / GigE", Mpich.tuned(), ga620),
        ("raw GM / Myrinet", RawGm(), configs.pc_myrinet()),
    ]
    print("CG-style iteration time, 8 ranks (matvec 1.2 ms + 2 allreduces):\n")
    print(f"{'stack':20} {'us/iteration':>13} {'vs best':>8}")
    times = {}
    for label, lib, cfg in cases:
        engine = Engine()
        comms = build_world(engine, lib, cfg, 8)
        per_iter = max(run_ranks(engine, comms, cg_like_program()))
        times[label] = per_iter
    best = min(times.values())
    for label, per_iter in times.items():
        print(f"{label:20} {1e6 * per_iter:>13.1f} {per_iter / best:>7.2f}x")
    print(
        "\nThe dot-product allreduces are pure latency: Myrinet's 16 us "
        "hops beat the 120 us GigE hops log2(8)=3 times per reduction, "
        "twice per iteration — a solver-speed difference no bandwidth "
        "plot predicts."
    )


if __name__ == "__main__":
    main()
