#!/usr/bin/env python
"""Extend the model: evaluate hardware the paper never had.

The hardware catalog is data, not code: defining a new NIC or host is a
dataclass instantiation.  This example asks a 2002-flavoured what-if —
what would the libraries do on a hypothetical early 10-Gigabit Ethernet
card, on both the Pentium-4 PC and a beefier host with PCI-X — and
shows which bottleneck (wire, PCI, CPU, memory, window) takes over.

Run:  python examples/custom_hardware.py
"""

from repro.core import run_netpipe
from repro.core.report import format_comparison
from repro.hw import ClusterConfig, HostModel, NicModel, NicKind, PciBus, SysctlConfig
from repro.mplib import Mpich, MpLite, RawTcp
from repro.net.tcp import TcpModel, TcpTuning
from repro.units import MB, kb, mbps, mbytes_per_s, us

# A speculative first-generation 10 GigE NIC: fast wire, jumbo frames,
# but the same per-packet driver costs as the SysKonnect.
TENGIG = NicModel(
    name="Hypothetical 10GigE (2003)",
    kind=NicKind.ETHERNET,
    link_rate=mbps(10_000),
    driver="xgbe-alpha",
    media="fiber",
    price_usd=4000,
    mtu_default=1500,
    mtu_max=9000,
    pci_64bit_capable=True,
    tx_per_packet_time=us(5.0),
    rx_per_packet_time=us(18.0),
    wire_latency=us(10.0),
    ack_rtt=us(400.0),
    link_efficiency=0.95,
)

# A server-class host: PCI-X 64/133 and DDR memory.
PCIX_SERVER = HostModel(
    name="Server (DDR, PCI-X 64/133)",
    cpu_ghz=2.4,
    memcpy_bandwidth=mbytes_per_s(800),
    syscall_time=us(1.5),
    interrupt_time=us(6.0),
    sched_wakeup_time=us(4.0),
    pci=PciBus(width_bits=64, clock_mhz=133.0, efficiency=0.67),
)

BIG_SYSCTL = SysctlConfig(default=kb(64), maximum=kb(4096))


def bottleneck_report(config: ClusterConfig) -> None:
    model = TcpModel(config, TcpTuning(sockbuf_request=kb(4096)))
    print(f"  {config.host.name}")
    print(f"    wire {model.wire_rate / 125e3:8.0f} | pci {model.pci_rate / 125e3:8.0f} "
          f"| tx-cpu {model.tx_cpu_rate / 125e3:8.0f} | rx-cpu {model.rx_cpu_rate / 125e3:8.0f} Mb/s")
    print(f"    8 MB bottleneck: {model.bottleneck(8 * MB)}")


def main() -> None:
    from repro.hw.catalog import PENTIUM4_PC

    print("Stage rates and bottleneck for the hypothetical 10GigE card")
    print("(jumbo frames, 4 MB socket buffers):\n")
    pc = ClusterConfig(PENTIUM4_PC, TENGIG, mtu=9000, sysctl=BIG_SYSCTL)
    server = ClusterConfig(PCIX_SERVER, TENGIG, mtu=9000, sysctl=BIG_SYSCTL)
    bottleneck_report(pc)
    bottleneck_report(server)

    print("\nAnd what the libraries would deliver on the server:\n")
    results = {}
    for lib in (RawTcp(sockbuf=kb(4096)), Mpich.tuned(sockbuf=kb(4096)), MpLite()):
        results[lib.display_name] = run_netpipe(lib, server)
    print(format_comparison(results))
    print(
        "\nMoral (unchanged since 2002): past the wire, it's the memory "
        "bus — MPICH's extra copy costs proportionally more as the "
        "network gets faster."
    )


if __name__ == "__main__":
    main()
