#!/usr/bin/env python
"""The cluster admin's afternoon: tune a cluster the paper's way.

Walks through the paper's three tuning stories on simulated hardware:

1. the OS: socket-buffer sysctls on the cheap TrendNet cards
   ("you cannot just slap in a Gigabit Ethernet card...");
2. MPICH: find P4_SOCKBUFSIZE's knee and reproduce the 5x claim;
3. PVM: the routing + encoding staircase (90 -> 330 -> 415 Mb/s).

Run:  python examples/tuning_study.py
"""

from repro.core import run_netpipe
from repro.experiments import configs
from repro.mplib import Mpich, MpichParams, Pvm, PvmEncoding, PvmParams, PvmRoute, RawTcp
from repro.tuning import autotune_sockbuf, format_registry
from repro.units import kb


def story_1_os_tuning() -> None:
    print("=" * 70)
    print("1. OS tuning: socket buffers on the $55 TrendNet cards")
    print("=" * 70)
    outcome = autotune_sockbuf(
        lambda b: RawTcp(sockbuf=b), configs.pc_trendnet()
    )
    for p in outcome.points:
        bar = "#" * int(p.metric / 12)
        print(f"  {p.value // 1024:>5} KB  {p.metric:6.1f} Mb/s  {bar}")
    print(
        f"\n  knee at {outcome.best_value // 1024} KB buffers -> "
        f"{outcome.best_metric:.0f} Mb/s "
        f"({outcome.improvement:.1f}x over the 8 KB baseline)\n"
    )


def story_2_mpich() -> None:
    print("=" * 70)
    print("2. MPICH: P4_SOCKBUFSIZE, 'vital to maximizing the performance'")
    print("=" * 70)
    ga620 = configs.pc_netgear_ga620()
    before = run_netpipe(Mpich(), ga620).plateau_mbps
    after = run_netpipe(Mpich.tuned(), ga620).plateau_mbps
    print(f"  default 32 KB : {before:6.1f} Mb/s")
    print(f"  tuned  256 KB : {after:6.1f} Mb/s")
    print(f"  -> {after / before:.1f}x  (the paper: 'a 5-fold increase')\n")


def story_3_pvm() -> None:
    print("=" * 70)
    print("3. PVM: route and encoding (Sec. 4.5)")
    print("=" * 70)
    ga620 = configs.pc_netgear_ga620()
    stages = [
        ("default (pvmd route, DataDefault)", Pvm()),
        ("+ PvmRouteDirect", Pvm.direct()),
        ("+ PvmDataInPlace", Pvm.tuned()),
    ]
    prev = None
    for label, lib in stages:
        mbps = run_netpipe(lib, ga620).plateau_mbps
        gain = f"  ({mbps / prev:.1f}x)" if prev else ""
        print(f"  {label:36s} {mbps:6.1f} Mb/s{gain}")
        prev = mbps
    print()


def main() -> None:
    story_1_os_tuning()
    story_2_mpich()
    story_3_pvm()
    print("=" * 70)
    print("Appendix: every knob the paper names, and who lets you turn it")
    print("=" * 70)
    print(format_registry())


if __name__ == "__main__":
    main()
