#!/usr/bin/env python
"""NetPIPE on real sockets: this machine, two processes, loopback TCP.

Everything else in this repository runs on simulated time; this example
runs the identical methodology on live kernel sockets using the MiniMP
library (a real miniature message-passing implementation with eager and
rendezvous protocols).  It demonstrates two paper effects live:

* small socket buffers throttle large-message throughput;
* the rendezvous handshake shows up as extra small-message latency
  above the threshold.

Run:  python examples/live_loopback.py
"""

from repro.core import netpipe_sizes
from repro.core.report import format_comparison
from repro.realnet import run_real_netpipe
from repro.units import MB, kb


def main() -> None:
    sizes = netpipe_sizes(stop=1 * MB)
    print("Running three live two-process NetPIPE sweeps over loopback...\n")

    results = {
        "default buffers": run_real_netpipe(
            sizes=sizes, eager_threshold=None, label="default buffers"
        ),
        "16 KB buffers": run_real_netpipe(
            sizes=sizes, sockbuf=kb(16), eager_threshold=None, label="16 KB buffers"
        ),
        "rendezvous @32K": run_real_netpipe(
            sizes=sizes, eager_threshold=kb(32), label="rendezvous @32K"
        ),
    }

    print(format_comparison(results, sizes=(64, 1024, 16384, 131072, 1048576)))
    print()
    dflt = results["default buffers"]
    small = results["16 KB buffers"]
    print(
        f"Shrinking socket buffers to 16 KB changed the 1 MB throughput "
        f"from {dflt.mbps_at(1 * MB):.0f} to {small.mbps_at(1 * MB):.0f} Mb/s "
        f"on this kernel."
    )
    print(
        "\n(Absolute numbers describe this machine's loopback, not the "
        "paper's 2002 cluster; the knobs are the same ones the paper "
        "turns.)"
    )


if __name__ == "__main__":
    main()
