#!/usr/bin/env python
"""Reproduce Figure 1 of the paper and audit it against the text.

Figure 1 is the paper's main result: seven message-passing stacks over
the Netgear GA620 fiber GigE cards between two Pentium-4 PCs.  This
example runs all seven sweeps, prints the comparison the way the
paper's figure reads, and checks every quantitative claim the paper
makes about it.

Run:  python examples/reproduce_figure1.py [fig2|fig3|fig4|fig5]
"""

import sys

from repro.analysis import fraction_of_raw
from repro.core.report import format_comparison
from repro.experiments import ALL_FIGURES, FIG1


def main() -> None:
    figure = FIG1
    if len(sys.argv) > 1:
        by_id = {f.id: f for f in ALL_FIGURES}
        try:
            figure = by_id[sys.argv[1]]
        except KeyError:
            raise SystemExit(f"unknown figure {sys.argv[1]!r}; try {sorted(by_id)}")

    print(figure.title)
    print("-" * len(figure.title))
    print(figure.description, "\n")

    results = figure.run()
    print(format_comparison(results), "\n")

    raw_label = next(
        (label for label in results if label.startswith("raw")), None
    )
    if raw_label:
        print(f"Fraction of {raw_label} delivered (the paper's Sec. 7 metric):")
        for label, frac in sorted(
            fraction_of_raw(results, raw_label).items(), key=lambda kv: -kv[1]
        ):
            print(f"  {label:14s} {100 * frac:5.1f}%")
        print()

    print("Anchor audit (paper vs measured):")
    rows = figure.audit(results)
    for row in rows:
        print(" ", row.render())
    misses = sum(not r.ok for r in rows)
    print(f"\n{len(rows) - misses}/{len(rows)} anchors within tolerance")


if __name__ == "__main__":
    main()
